package main

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"reflect"
	"strconv"
	"sync/atomic"
	"syscall"
	"testing"
	"time"

	"repro/api"
	"repro/client"
	"repro/internal/cluster"
	"repro/internal/service"
	"repro/internal/service/jobs"
)

// swapHandler lets an httptest server start (and hand out its URL)
// before the handler behind it exists — the bootstrap every in-process
// cluster needs, since each node's router wants every node's URL.
type swapHandler struct{ h atomic.Value }

func (s *swapHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if h, ok := s.h.Load().(http.Handler); ok {
		h.ServeHTTP(w, r)
		return
	}
	http.Error(w, "node not wired yet", http.StatusServiceUnavailable)
}

// clusterNode is one in-process mus-serve member.
type clusterNode struct {
	url  string
	ts   *httptest.Server
	eng  *service.Engine
	clu  *cluster.Router
	swap *swapHandler
	// blockForwardedSweeps makes forwarded sweep sub-requests hang until
	// release is closed (or the connection dies) — how the kill test
	// guarantees the victim still holds unanswered points at kill time.
	// Once released, a "blocked" sub-request returns an empty truncated
	// stream, exactly what a crashing process leaves behind.
	blockForwardedSweeps atomic.Bool
	release              chan struct{}
}

// kill hard-kills the node: in-flight connections severed (callers see
// mid-stream death), stuck handlers released so they die too, listener
// closed so redials are refused.
func (n *clusterNode) kill() {
	n.ts.CloseClientConnections()
	close(n.release)
	n.ts.Close()
}

// startTestCluster boots n federated nodes with bare URLs as ring IDs
// (so client.NewCluster over the same URLs agrees on every owner) and
// background probing off — health converges through forwarding failures
// and explicit ProbeOnce calls, keeping tests deterministic.
func startTestCluster(t *testing.T, n int) []*clusterNode {
	t.Helper()
	nodes := make([]*clusterNode, n)
	cfgs := make([]cluster.NodeConfig, n)
	for i := range nodes {
		sh := &swapHandler{}
		ts := httptest.NewServer(sh)
		t.Cleanup(ts.Close)
		nodes[i] = &clusterNode{url: ts.URL, ts: ts, swap: sh, release: make(chan struct{})}
		cfgs[i] = cluster.NodeConfig{ID: ts.URL, URL: ts.URL}
	}
	for i, nd := range nodes {
		nd.eng = service.NewEngine(service.Config{})
		sched := jobs.New(jobs.Config{Engine: nd.eng})
		t.Cleanup(sched.Close)
		clu, err := cluster.New(cluster.Config{SelfID: cfgs[i].ID, Nodes: cfgs, ProbeInterval: -1})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(clu.Close)
		nd.clu = clu
		inner := newServerCluster(nd.eng, sched, clu).handler()
		me := nd
		nd.swap.h.Store(http.Handler(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if me.blockForwardedSweeps.Load() && r.URL.Path == api.PathSweep && r.Header.Get(api.HeaderForwarded) != "" {
				// Drain the body (so the server's close-detection read runs),
				// then hang until the kill. Returning without writing leaves
				// the caller a truncated stream — a crash's signature.
				io.Copy(io.Discard, r.Body) //nolint:errcheck
				select {
				case <-me.release:
				case <-r.Context().Done():
				}
				return
			}
			inner.ServeHTTP(w, r)
		})))
	}
	return nodes
}

// sweepReqN builds an n-point λ sweep over an 8-server system, every
// point inside the stability region (capacity ≈ 7.58).
func sweepReqN(n int) api.SweepRequest {
	req := api.SweepRequest{
		System: api.System{Servers: 8},
		Param:  api.ParamLambda,
		Values: make([]float64, n),
	}
	for i := range req.Values {
		req.Values[i] = 0.2 + 7.0*float64(i)/float64(n)
	}
	return req
}

// singleNodeSweepBaseline computes the grid on a standalone server — the
// bit-identity reference for every clustered path.
func singleNodeSweepBaseline(t *testing.T, req api.SweepRequest) []api.SweepPoint {
	t.Helper()
	ts := testServer(t)
	resp, err := client.New(ts.URL).Sweep(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	return resp.Points
}

// TestClusterSweepBitIdenticalToSingleNode is the tentpole acceptance
// criterion: a sweep scattered across a 3-node cluster returns exactly
// the points a single node returns — same order, same bits — on both
// the buffered and the NDJSON streaming path, while the work really did
// spread across the membership.
func TestClusterSweepBitIdenticalToSingleNode(t *testing.T) {
	req := sweepReqN(30)
	want := singleNodeSweepBaseline(t, req)
	nodes := startTestCluster(t, 3)
	c := client.New(nodes[0].url)

	buffered, err := c.Sweep(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(buffered.Points, want) {
		t.Fatalf("buffered cluster sweep diverged from single node\n got %+v\nwant %+v", buffered.Points, want)
	}

	var streamed []api.SweepPoint
	if err := c.SweepStream(context.Background(), req, func(pt api.SweepPoint) error {
		streamed = append(streamed, pt)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(streamed, want) {
		t.Fatalf("streamed cluster sweep diverged from single node\n got %+v\nwant %+v", streamed, want)
	}

	// The grid was genuinely scattered: node0 solved only its own shard,
	// the rest of the evaluations ran on peers.
	var totalSolves uint64
	for _, nd := range nodes {
		totalSolves += nd.eng.Stats().Solves
	}
	node0 := nodes[0].eng.Stats().Solves
	if totalSolves != uint64(len(req.Values)) {
		t.Errorf("cluster solved %d distinct points, want %d (each grid point exactly once)", totalSolves, len(req.Values))
	}
	if node0 == totalSolves {
		t.Errorf("node0 solved everything itself; nothing was scattered")
	}
	st, err := c.Cluster(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !st.Enabled || st.ForwardedTotal == 0 || st.LocalServed == 0 || len(st.Nodes) != 3 {
		t.Errorf("cluster stats after scatter: %+v", st)
	}
}

// TestClusterKillMidSweepFailover is the failover acceptance criterion:
// with one node killed mid-sweep, the stream still delivers every grid
// point, in order, bit-identical to the single-node result — zero lost
// points, the survivors absorbing the dead node's shard.
func TestClusterKillMidSweepFailover(t *testing.T) {
	req := sweepReqN(36)
	want := singleNodeSweepBaseline(t, req)
	nodes := startTestCluster(t, 3)
	// The victim's forwarded sweep sub-requests hang, guaranteeing it
	// still owes points when it dies.
	victim := nodes[1]
	victim.blockForwardedSweeps.Store(true)

	type result struct {
		pts []api.SweepPoint
		err error
	}
	resc := make(chan result, 1)
	go func() {
		var pts []api.SweepPoint
		err := client.New(nodes[0].url).SweepStream(context.Background(), req, func(pt api.SweepPoint) error {
			pts = append(pts, pt)
			return nil
		})
		resc <- result{pts, err}
	}()
	// Let the scatter reach the victim, then kill it hard: in-flight
	// connections severed, listener closed, no clean goodbye.
	time.Sleep(300 * time.Millisecond)
	victim.kill()

	var res result
	select {
	case res = <-resc:
	case <-time.After(60 * time.Second):
		t.Fatal("sweep never completed after node kill")
	}
	if res.err != nil {
		t.Fatalf("sweep failed instead of failing over: %v", res.err)
	}
	if len(res.pts) != len(req.Values) {
		t.Fatalf("lost grid points: got %d, want %d", len(res.pts), len(req.Values))
	}
	if !reflect.DeepEqual(res.pts, want) {
		t.Fatalf("failover sweep diverged from single node\n got %+v\nwant %+v", res.pts, want)
	}
	// The coordinator noticed: failovers counted, victim marked down.
	st, err := client.New(nodes[0].url).Cluster(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if st.Failovers == 0 {
		t.Errorf("no failover recorded: %+v", st)
	}
	for _, n := range st.Nodes {
		if n.URL == victim.url && n.Healthy {
			t.Errorf("killed node still marked healthy: %+v", n)
		}
	}
}

// TestClusterSolveAffinity: the same configuration posted to every node
// is answered identically, but solved exactly once cluster-wide — the
// ring pins the fingerprint to one owner whose cache serves everyone.
func TestClusterSolveAffinity(t *testing.T) {
	nodes := startTestCluster(t, 3)
	body := `{"servers": 12, "lambda": 8}`
	var first api.SolveResponse
	for i, nd := range nodes {
		var got api.SolveResponse
		status, raw := postJSON(t, nd.url+api.PathSolve, body, &got)
		if status != http.StatusOK {
			t.Fatalf("node %d: status %d: %s", i, status, raw)
		}
		if i == 0 {
			first = got
			continue
		}
		if !reflect.DeepEqual(got, first) {
			t.Fatalf("node %d answered differently: %+v vs %+v", i, got, first)
		}
	}
	var totalSolves, totalEvals uint64
	for _, nd := range nodes {
		st := nd.eng.Stats()
		totalSolves += st.Solves
		totalEvals += st.Evaluations
	}
	if totalSolves != 1 {
		t.Errorf("cluster ran %d solver invocations for one fingerprint, want 1 (cache affinity)", totalSolves)
	}
	if totalEvals != 3 {
		t.Errorf("cluster recorded %d evaluations, want 3 (one per posted request)", totalEvals)
	}
}

// TestClientClusterShardingSkipsTheHop: a client.NewCluster over the
// same bare URLs the servers federate under sends every request straight
// to its ring owner — no server-side forward happens at all.
func TestClientClusterShardingSkipsTheHop(t *testing.T) {
	nodes := startTestCluster(t, 3)
	urls := make([]string, len(nodes))
	for i, nd := range nodes {
		urls[i] = nd.url
	}
	cc, err := client.NewCluster(urls)
	if err != nil {
		t.Fatal(err)
	}
	const k = 12
	for i := 0; i < k; i++ {
		// Distinct fingerprints via λ, at one small fixed N — varying the
		// server count instead would grow the eigenproblem and make this
		// test dominate the -race job's wall clock.
		req := api.SolveRequest{System: api.System{Servers: 8, Lambda: 3 + 0.1*float64(i)}}
		if _, err := cc.Solve(context.Background(), req); err != nil {
			t.Fatalf("solve %d: %v", i, err)
		}
	}
	var forwarded, local uint64
	for _, nd := range nodes {
		st := nd.clu.Stats()
		forwarded += st.ForwardedTotal
		local += st.LocalServed
	}
	if forwarded != 0 {
		t.Errorf("client-side sharding still caused %d server-side forwards (ring views disagree)", forwarded)
	}
	if local != k {
		t.Errorf("local serves = %d, want %d (every request landed on its owner)", local, k)
	}
}

// TestClusterEndpointStandalone: without -peers the endpoint still
// answers, flagged disabled, with the local affinity numbers.
func TestClusterEndpointStandalone(t *testing.T) {
	ts := testServer(t)
	var got api.ClusterResponse
	resp, err := http.Get(ts.URL + api.PathCluster)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	decodeTestJSON(t, resp, &got)
	if got.Enabled || len(got.Nodes) != 0 {
		t.Fatalf("standalone cluster view: %+v", got)
	}
}

// TestDrainingRejectsWithRetryAfter: once graceful shutdown begins,
// every request — health probes included — gets 503 node_unavailable
// with a Retry-After hint, so LBs and peers route around the node.
func TestDrainingRejectsWithRetryAfter(t *testing.T) {
	eng := service.NewEngine(service.Config{})
	sched := jobs.New(jobs.Config{Engine: eng})
	t.Cleanup(sched.Close)
	srv := newServerJobs(eng, sched)
	ts := httptest.NewServer(srv.handler())
	t.Cleanup(ts.Close)
	if resp, err := http.Get(ts.URL + api.PathHealthz); err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("pre-drain healthz: %v %v", resp, err)
	} else {
		resp.Body.Close()
	}
	srv.startDrain()
	status, env := getForError(t, ts.URL+api.PathHealthz)
	if status != http.StatusServiceUnavailable || env.Error == nil || env.Error.Code != api.CodeNodeUnavailable {
		t.Fatalf("draining healthz: %d %+v", status, env)
	}
	resp, err := http.Get(ts.URL + api.PathStats)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable || resp.Header.Get("Retry-After") == "" {
		t.Fatalf("draining stats: %d Retry-After=%q", resp.StatusCode, resp.Header.Get("Retry-After"))
	}
	// Job reads stay open during the drain — the drain waits for running
	// jobs precisely so their results remain fetchable; an unknown ID
	// answers its normal 404, not the drain 503.
	jr, err := http.Get(ts.URL + api.PathJobs + "/nonexistent")
	if err != nil {
		t.Fatal(err)
	}
	defer jr.Body.Close()
	if jr.StatusCode != http.StatusNotFound {
		t.Fatalf("draining job read: %d, want 404 (reads exempt from the drain gate)", jr.StatusCode)
	}
	// The job-history read is exempt too: pollers catching up after the
	// drain announcement still see the full list.
	jl, err := http.Get(ts.URL + api.PathJobs)
	if err != nil {
		t.Fatal(err)
	}
	defer jl.Body.Close()
	if jl.StatusCode != http.StatusOK {
		t.Fatalf("draining job list: %d, want 200", jl.StatusCode)
	}
}

// TestDrainSubmitRaceStillRejected pins the drain-race regression: a
// submission that slipped PAST the HTTP drain middleware before the flag
// flipped (simulated by invoking the submit handler directly) must still
// be rejected — startDrain closes the scheduler's own gate in the same
// breath — and the rejection must carry the identical 503 +
// Retry-After contract the middleware emits, so a racing client cannot
// tell which layer turned it away and retries the same way regardless.
func TestDrainSubmitRaceStillRejected(t *testing.T) {
	eng := service.NewEngine(service.Config{})
	sched := jobs.New(jobs.Config{Engine: eng})
	t.Cleanup(sched.Close)
	srv := newServerJobs(eng, sched)
	handler := srv.handler() // registers instruments; submit goes through the mux below
	srv.startDrain()
	body, err := json.Marshal(api.NewSweepJob(sweepReqN(2)))
	if err != nil {
		t.Fatal(err)
	}
	// Hit the submit handler directly — the raced request already passed
	// the middleware check, so the middleware never sees the drain flag.
	r := httptest.NewRequest(http.MethodPost, api.PathJobs, bytes.NewReader(body))
	w := httptest.NewRecorder()
	srv.handleJobSubmit(w, r)
	if w.Code != http.StatusServiceUnavailable {
		t.Fatalf("raced submit: %d, want 503", w.Code)
	}
	if got := w.Header().Get("Retry-After"); got != strconv.Itoa(api.RetryAfterDraining) {
		t.Fatalf("raced submit Retry-After = %q, want %d", got, api.RetryAfterDraining)
	}
	var env api.ErrorEnvelope
	if err := json.Unmarshal(w.Body.Bytes(), &env); err != nil || env.Error == nil || env.Error.Code != api.CodeNodeUnavailable {
		t.Fatalf("raced submit envelope: %s (%v)", w.Body.Bytes(), err)
	}
	// And the ordinary path through the middleware reports identically.
	ts := httptest.NewServer(handler)
	t.Cleanup(ts.Close)
	resp, err := http.Post(ts.URL+api.PathJobs, api.ContentTypeJSON, bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable || resp.Header.Get("Retry-After") == "" {
		t.Fatalf("gated submit: %d Retry-After=%q, want 503 with hint", resp.StatusCode, resp.Header.Get("Retry-After"))
	}
}

// TestRunGracefulShutdownOnSIGTERM drives the real daemon loop: start
// run() on a free port, wait until it serves, send ourselves SIGTERM and
// require a clean (exit-0) return within the drain budget.
func TestRunGracefulShutdownOnSIGTERM(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	done := make(chan error, 1)
	go func() {
		done <- run([]string{"-addr", addr, "-workers", "2", "-drain-timeout", "5s"})
	}()
	deadline := time.Now().Add(10 * time.Second)
	for {
		resp, err := http.Get("http://" + addr + api.PathHealthz)
		if err == nil {
			resp.Body.Close()
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("daemon never came up")
		}
		time.Sleep(20 * time.Millisecond)
	}
	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("run returned %v after SIGTERM, want nil (exit 0)", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("run did not return after SIGTERM")
	}
}

// TestRunRejectsClusterMisconfiguration: -peers without -node-id (and a
// -node-id missing from the list) must fail fast, not serve misrouted.
func TestRunRejectsClusterMisconfiguration(t *testing.T) {
	if err := run([]string{"-peers", "http://a:1,http://b:2"}); err == nil {
		t.Error("-peers without -node-id accepted")
	}
	if err := run([]string{"-peers", "http://a:1,http://b:2", "-node-id", "http://c:3"}); err == nil {
		t.Error("-node-id outside the peer list accepted")
	}
}

// decodeTestJSON decodes a response body, failing the test on garbage.
func decodeTestJSON(t *testing.T, resp *http.Response, v any) {
	t.Helper()
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		t.Fatalf("decode response: %v", err)
	}
}

// getForError fetches a URL expected to fail and decodes its envelope.
func getForError(t *testing.T, url string) (int, api.ErrorEnvelope) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var env api.ErrorEnvelope
	decodeTestJSON(t, resp, &env)
	return resp.StatusCode, env
}

// BenchmarkClusterSweep compares in-process sweep throughput: the same
// repeated 48-point grid against one standalone node versus a 3-node
// cluster entered at one coordinator. The cluster pays scatter/gather
// HTTP hops per shard but shares three caches; hit_rate reports the
// coordinator's solver-cache hit rate at the end of the run.
func BenchmarkClusterSweep(b *testing.B) {
	req := sweepReqN(48)
	bench := func(b *testing.B, url string, eng *service.Engine) {
		c := client.New(url)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := c.Sweep(context.Background(), req); err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		st := eng.Stats()
		b.ReportMetric(st.Cache.HitRate(), "hit_rate")
		b.ReportMetric(float64(len(req.Values))*float64(b.N)/b.Elapsed().Seconds(), "points/s")
	}
	b.Run("1node", func(b *testing.B) {
		eng := service.NewEngine(service.Config{})
		sched := jobs.New(jobs.Config{Engine: eng})
		b.Cleanup(sched.Close)
		ts := httptest.NewServer(newServerJobs(eng, sched).handler())
		b.Cleanup(ts.Close)
		bench(b, ts.URL, eng)
	})
	b.Run("3node", func(b *testing.B) {
		nodes := startBenchCluster(b, 3)
		bench(b, nodes[0].url, nodes[0].eng)
	})
}

// startBenchCluster mirrors startTestCluster for benchmarks.
func startBenchCluster(b *testing.B, n int) []*clusterNode {
	b.Helper()
	nodes := make([]*clusterNode, n)
	cfgs := make([]cluster.NodeConfig, n)
	for i := range nodes {
		sh := &swapHandler{}
		ts := httptest.NewServer(sh)
		b.Cleanup(ts.Close)
		nodes[i] = &clusterNode{url: ts.URL, ts: ts, swap: sh, release: make(chan struct{})}
		cfgs[i] = cluster.NodeConfig{ID: ts.URL, URL: ts.URL}
	}
	for i, nd := range nodes {
		nd.eng = service.NewEngine(service.Config{})
		sched := jobs.New(jobs.Config{Engine: nd.eng})
		b.Cleanup(sched.Close)
		clu, err := cluster.New(cluster.Config{SelfID: cfgs[i].ID, Nodes: cfgs, ProbeInterval: -1})
		if err != nil {
			b.Fatal(err)
		}
		b.Cleanup(clu.Close)
		nd.clu = clu
		nd.swap.h.Store(http.Handler(newServerCluster(nd.eng, sched, clu).handler()))
	}
	return nodes
}
