package main

import (
	"bytes"
	"encoding/json"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"testing"

	"repro/api"
	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/service"
	"repro/internal/service/jobs"
)

// newTestHandler builds the full route table over eng with a
// default-configured job scheduler whose goroutines stop at test cleanup.
func newTestHandler(t *testing.T, eng *service.Engine) http.Handler {
	t.Helper()
	sched := jobs.New(jobs.Config{Engine: eng})
	t.Cleanup(sched.Close)
	return newServerJobs(eng, sched).handler()
}

func testServer(t *testing.T) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(newTestHandler(t, service.NewEngine(service.Config{})))
	t.Cleanup(ts.Close)
	return ts
}

func postJSON(t *testing.T, url string, body string, out any) (int, string) {
	t.Helper()
	resp, err := http.Post(url, "application/json", bytes.NewReader([]byte(body)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if out != nil && resp.StatusCode == http.StatusOK {
		if err := json.Unmarshal(raw, out); err != nil {
			t.Fatalf("decode %s: %v\n%s", url, err, raw)
		}
	}
	return resp.StatusCode, string(raw)
}

// postForError posts a request expected to fail and decodes its envelope.
func postForError(t *testing.T, url, body string) (int, api.ErrorEnvelope) {
	t.Helper()
	resp, err := http.Post(url, "application/json", bytes.NewReader([]byte(body)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	var env api.ErrorEnvelope
	if err := json.Unmarshal(raw, &env); err != nil {
		t.Fatalf("error body is not an envelope: %v\n%s", err, raw)
	}
	return resp.StatusCode, env
}

func TestSolveEndpoint(t *testing.T) {
	ts := testServer(t)
	var got api.SolveResponse
	status, raw := postJSON(t, ts.URL+"/v1/solve",
		`{"servers": 12, "lambda": 8, "holding_cost": 4, "server_cost": 1}`, &got)
	if status != http.StatusOK {
		t.Fatalf("status %d: %s", status, raw)
	}
	// The default distributions are the paper's, so the response must match
	// a direct solve of the Figure 5 λ=8, N=12 point.
	sys := core.System{
		Servers:     12,
		ArrivalRate: 8,
		ServiceRate: 1,
		Operative:   dist.MustHyperExp([]float64{0.7246, 0.2754}, []float64{0.1663, 0.0091}),
		Repair:      dist.Exp(25),
	}
	want, err := sys.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got.Perf.MeanJobs-want.MeanJobs) > 1e-9 {
		t.Errorf("L = %v, want %v", got.Perf.MeanJobs, want.MeanJobs)
	}
	if math.Abs(got.Perf.MeanResponse-want.MeanResponse) > 1e-9 {
		t.Errorf("W = %v, want %v", got.Perf.MeanResponse, want.MeanResponse)
	}
	if got.Fingerprint != sys.Fingerprint() {
		t.Errorf("fingerprint %s, want %s", got.Fingerprint, sys.Fingerprint())
	}
	if !got.Stable || got.Modes != sys.Modes() {
		t.Errorf("stable=%v modes=%d, want true/%d", got.Stable, got.Modes, sys.Modes())
	}
	if got.Cost == nil {
		t.Fatal("cost missing")
	}
	wantCost := 4*want.MeanJobs + 12
	if math.Abs(*got.Cost-wantCost) > 1e-9 {
		t.Errorf("cost = %v, want %v", *got.Cost, wantCost)
	}
}

func TestSolveEndpointRejectsBadInput(t *testing.T) {
	ts := testServer(t)
	cases := []struct {
		name, body string
		wantStatus int
		wantCode   api.Code
	}{
		{"invalid json", `{"servers": `, http.StatusBadRequest, api.CodeInvalidArgument},
		{"unknown field", `{"serverz": 3}`, http.StatusBadRequest, api.CodeInvalidArgument},
		{"no servers", `{"lambda": 8}`, http.StatusBadRequest, api.CodeInvalidArgument},
		{"bad method", `{"servers": 3, "lambda": 1, "method": "quantum"}`, http.StatusBadRequest, api.CodeInvalidArgument},
		{"bad distribution", `{"servers": 3, "lambda": 1, "op_weights": [0.5], "op_rates": [0.5, 1]}`, http.StatusBadRequest, api.CodeInvalidArgument},
		{"unstable", `{"servers": 2, "lambda": 50}`, http.StatusUnprocessableEntity, api.CodeUnstableSystem},
	}
	for _, c := range cases {
		status, env := postForError(t, ts.URL+"/v1/solve", c.body)
		if status != c.wantStatus {
			t.Errorf("%s: status %d, want %d", c.name, status, c.wantStatus)
		}
		if env.Error == nil || env.Error.Code != c.wantCode {
			t.Errorf("%s: envelope %+v, want code %s", c.name, env.Error, c.wantCode)
		}
		if env.RequestID == "" {
			t.Errorf("%s: error envelope missing request_id", c.name)
		}
	}
	// Wrong verb.
	resp, err := http.Get(ts.URL + "/v1/solve")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /v1/solve: status %d, want 405", resp.StatusCode)
	}
}

func TestSweepEndpointLambda(t *testing.T) {
	ts := testServer(t)
	var got api.SweepResponse
	status, raw := postJSON(t, ts.URL+"/v1/sweep",
		`{"servers": 10, "param": "lambda", "values": [4, 5, 6, 7], "method": "spectral"}`, &got)
	if status != http.StatusOK {
		t.Fatalf("status %d: %s", status, raw)
	}
	if len(got.Points) != 4 {
		t.Fatalf("%d points, want 4", len(got.Points))
	}
	prev := 0.0
	for i, pt := range got.Points {
		if pt.Error != "" {
			t.Fatalf("point %d failed: %s", i, pt.Error)
		}
		if pt.Index != i {
			t.Errorf("point %d carries index %d", i, pt.Index)
		}
		if pt.Perf.MeanJobs <= prev {
			t.Errorf("L not increasing with λ at %v", pt.Value)
		}
		prev = pt.Perf.MeanJobs
	}
}

func TestSweepEndpointServersWithPerPointErrors(t *testing.T) {
	ts := testServer(t)
	var got api.SweepResponse
	// N=8 is unstable at λ=8 with the default availability (≈0.993·8 < 8);
	// its point must carry an error while the others succeed.
	status, raw := postJSON(t, ts.URL+"/v1/sweep",
		`{"lambda": 8, "param": "servers", "values": [0, 9, 12]}`, &got)
	if status != http.StatusOK {
		t.Fatalf("status %d: %s", status, raw)
	}
	if got.Points[0].Error == "" {
		t.Error("N=0 point did not report an error")
	}
	for _, i := range []int{1, 2} {
		if got.Points[i].Error != "" {
			t.Errorf("N=%v failed: %s", got.Points[i].Value, got.Points[i].Error)
		}
	}
	if got.Points[1].Perf.MeanJobs <= got.Points[2].Perf.MeanJobs {
		t.Error("L(N=9) should exceed L(N=12)")
	}
}

func TestSweepEndpointRejectsBadParam(t *testing.T) {
	ts := testServer(t)
	if status, _ := postJSON(t, ts.URL+"/v1/sweep", `{"servers": 3, "lambda": 1, "param": "mu", "values": [1]}`, nil); status != http.StatusBadRequest {
		t.Errorf("bad param: status %d", status)
	}
	if status, _ := postJSON(t, ts.URL+"/v1/sweep", `{"servers": 3, "lambda": 1, "param": "lambda", "values": []}`, nil); status != http.StatusBadRequest {
		t.Errorf("empty values: status %d", status)
	}
}

func TestOptimizeEndpointCost(t *testing.T) {
	ts := testServer(t)
	var got api.OptimizeResponse
	// Figure 5, λ = 8: the cost-optimal fleet is N* = 12.
	status, raw := postJSON(t, ts.URL+"/v1/optimize",
		`{"lambda": 8, "holding_cost": 4, "server_cost": 1, "min_servers": 9, "max_servers": 17}`, &got)
	if status != http.StatusOK {
		t.Fatalf("status %d: %s", status, raw)
	}
	if got.Servers != 12 {
		t.Errorf("N* = %d, paper says 12", got.Servers)
	}
	if got.Cost == nil || *got.Cost <= 12 {
		t.Errorf("cost %v looks wrong", got.Cost)
	}
}

func TestOptimizeEndpointResponseTarget(t *testing.T) {
	ts := testServer(t)
	var got api.OptimizeResponse
	// Figure 9: λ = 7.5, W ≤ 1.5 needs 9 servers.
	status, raw := postJSON(t, ts.URL+"/v1/optimize",
		`{"lambda": 7.5, "target_response": 1.5}`, &got)
	if status != http.StatusOK {
		t.Fatalf("status %d: %s", status, raw)
	}
	if got.Servers != 9 {
		t.Errorf("min N = %d, paper says 9", got.Servers)
	}
	if got.Perf.MeanResponse > 1.5 {
		t.Errorf("W = %v exceeds the target", got.Perf.MeanResponse)
	}
}

func TestOptimizeEndpointRespectsMinServersFloor(t *testing.T) {
	ts := testServer(t)
	var got api.OptimizeResponse
	// Without the floor the answer is 9; the client's min_servers must hold.
	status, raw := postJSON(t, ts.URL+"/v1/optimize",
		`{"lambda": 7.5, "target_response": 1.5, "min_servers": 11, "max_servers": 20}`, &got)
	if status != http.StatusOK {
		t.Fatalf("status %d: %s", status, raw)
	}
	if got.Servers != 11 {
		t.Errorf("min N = %d, want the requested floor 11", got.Servers)
	}
}

func TestOptimizeEndpointUnsatisfiableCode(t *testing.T) {
	ts := testServer(t)
	// No N in [1, 2] can hold W ≤ 0.9 at λ = 8 — a well-formed question
	// with no answer must come back as 422/unsatisfiable, not 500.
	status, env := postForError(t, ts.URL+"/v1/optimize",
		`{"lambda": 8, "target_response": 0.9, "min_servers": 1, "max_servers": 2}`)
	if status != http.StatusUnprocessableEntity {
		t.Fatalf("status %d, want 422 (%+v)", status, env.Error)
	}
	if env.Error == nil || env.Error.Code != api.CodeUnsatisfiable {
		t.Errorf("envelope %+v, want code unsatisfiable", env.Error)
	}
}

func TestSweepEndpointRejectsFractionalServers(t *testing.T) {
	ts := testServer(t)
	status, raw := postJSON(t, ts.URL+"/v1/sweep",
		`{"lambda": 8, "param": "servers", "values": [9.5, 12]}`, nil)
	if status != http.StatusBadRequest {
		t.Errorf("fractional servers value: status %d (%s)", status, raw)
	}
}

func TestOptimizeEndpointRejectsMissingObjective(t *testing.T) {
	ts := testServer(t)
	if status, _ := postJSON(t, ts.URL+"/v1/optimize", `{"lambda": 8}`, nil); status != http.StatusBadRequest {
		t.Errorf("no objective: status %d", status)
	}
	if status, _ := postJSON(t, ts.URL+"/v1/optimize",
		`{"lambda": 8, "holding_cost": 4, "server_cost": 1, "min_servers": 5, "max_servers": 3}`, nil); status != http.StatusBadRequest {
		t.Errorf("inverted range: status %d", status)
	}
}

func TestStatsEndpointTracksCache(t *testing.T) {
	ts := testServer(t)
	body := `{"servers": 10, "lambda": 6}`
	for i := 0; i < 2; i++ {
		if status, raw := postJSON(t, ts.URL+"/v1/solve", body, nil); status != http.StatusOK {
			t.Fatalf("solve %d: status %d: %s", i, status, raw)
		}
	}
	resp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var got api.StatsResponse
	if err := json.NewDecoder(resp.Body).Decode(&got); err != nil {
		t.Fatal(err)
	}
	if got.Requests != 3 {
		t.Errorf("requests = %d, want 3", got.Requests)
	}
	if got.Solves != 1 {
		t.Errorf("solves = %d, want 1 (second solve should hit the cache)", got.Solves)
	}
	if got.Cache.Hits != 1 {
		t.Errorf("cache hits = %d, want 1", got.Cache.Hits)
	}
	if got.Cache.HitRate != 0.5 {
		t.Errorf("hit rate = %v, want 0.5", got.Cache.HitRate)
	}
	if got.Workers < 1 {
		t.Errorf("workers = %d", got.Workers)
	}
}

func TestHealthzEndpoint(t *testing.T) {
	ts := testServer(t)
	resp, err := http.Get(ts.URL + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d, want 200", resp.StatusCode)
	}
	var got api.HealthResponse
	if err := json.NewDecoder(resp.Body).Decode(&got); err != nil {
		t.Fatal(err)
	}
	if got.Status != "ok" {
		t.Errorf("status %q, want ok", got.Status)
	}
	if got.Workers < 1 {
		t.Errorf("workers = %d", got.Workers)
	}
	if got.CacheCapacity != service.DefaultCacheSize {
		t.Errorf("cache capacity = %d, want %d", got.CacheCapacity, service.DefaultCacheSize)
	}
	if got.SimCacheCapacity != service.DefaultSimCacheSize {
		t.Errorf("sim cache capacity = %d, want %d", got.SimCacheCapacity, service.DefaultSimCacheSize)
	}

	// Load-balancer probes must not drown the stats request counter.
	for i := 0; i < 5; i++ {
		probe, err := http.Get(ts.URL + "/v1/healthz")
		if err != nil {
			t.Fatal(err)
		}
		probe.Body.Close()
	}
	stats, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer stats.Body.Close()
	var st api.StatsResponse
	if err := json.NewDecoder(stats.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Requests != 1 {
		t.Errorf("requests = %d after 6 healthz probes and 1 stats call, want 1 (probes uncounted)", st.Requests)
	}
}

func TestRequestIDPropagation(t *testing.T) {
	ts := testServer(t)
	// A caller-supplied ID is echoed verbatim on the response header.
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/solve",
		bytes.NewReader([]byte(`{"servers": 10, "lambda": 6}`)))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set(api.HeaderRequestID, "trace-abc")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body) //nolint:errcheck
	resp.Body.Close()
	if got := resp.Header.Get(api.HeaderRequestID); got != "trace-abc" {
		t.Errorf("echoed request id %q, want trace-abc", got)
	}

	// An absent ID is generated, echoed, and embedded in error envelopes.
	resp, err = http.Post(ts.URL+"/v1/solve", "application/json",
		bytes.NewReader([]byte(`{"servers": 2, "lambda": 50}`)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	headerID := resp.Header.Get(api.HeaderRequestID)
	if headerID == "" {
		t.Fatal("no generated request id on the response")
	}
	var env api.ErrorEnvelope
	if err := json.NewDecoder(resp.Body).Decode(&env); err != nil {
		t.Fatal(err)
	}
	if env.RequestID != headerID {
		t.Errorf("envelope request_id %q != header %q", env.RequestID, headerID)
	}
}

func TestSimulateEndpoint(t *testing.T) {
	ts := testServer(t)
	var got api.SimulateResponse
	status, raw := postJSON(t, ts.URL+"/v1/simulate",
		`{"servers": 3, "lambda": 1.8, "seed": 11, "warmup": 500, "horizon": 20000, "replications": 4}`, &got)
	if status != http.StatusOK {
		t.Fatalf("status %d: %s", status, raw)
	}
	if got.Replications != 4 || !got.Converged {
		t.Errorf("replications=%d converged=%v", got.Replications, got.Converged)
	}
	if got.Confidence != 0.95 {
		t.Errorf("confidence = %v", got.Confidence)
	}
	if got.MeanQueue.HalfWidth <= 0 || got.MeanResponse.HalfWidth <= 0 {
		t.Errorf("expected positive CI half-widths: %+v", got)
	}
	// The simulated point estimate must agree with the exact solution.
	sys := core.System{
		Servers:     3,
		ArrivalRate: 1.8,
		ServiceRate: 1,
		Operative:   dist.MustHyperExp([]float64{0.7246, 0.2754}, []float64{0.1663, 0.0091}),
		Repair:      dist.Exp(25),
	}
	want, err := sys.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if diff := math.Abs(got.MeanQueue.Mean - want.MeanJobs); diff > 3*got.MeanQueue.HalfWidth {
		t.Errorf("simulated L %v ± %v vs exact %v", got.MeanQueue.Mean, got.MeanQueue.HalfWidth, want.MeanJobs)
	}
	if got.Fingerprint != sys.Fingerprint() {
		t.Errorf("fingerprint %s, want %s", got.Fingerprint, sys.Fingerprint())
	}

	// An identical request must be answered from the simulation cache.
	var again api.SimulateResponse
	if status, raw := postJSON(t, ts.URL+"/v1/simulate",
		`{"servers": 3, "lambda": 1.8, "seed": 11, "warmup": 500, "horizon": 20000, "replications": 4}`, &again); status != http.StatusOK {
		t.Fatalf("repeat: status %d: %s", status, raw)
	}
	if again != got {
		t.Error("repeat request not bit-identical")
	}
	resp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st api.StatsResponse
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.SimRuns != 1 {
		t.Errorf("sim_runs = %d, want 1 (repeat must hit the cache)", st.SimRuns)
	}
	if st.SimCache.Hits != 1 {
		t.Errorf("sim cache hits = %d, want 1", st.SimCache.Hits)
	}
}

func TestSimulateEndpointEarlyStop(t *testing.T) {
	ts := testServer(t)
	var got api.SimulateResponse
	status, raw := postJSON(t, ts.URL+"/v1/simulate",
		`{"servers": 3, "lambda": 1.5, "seed": 3, "warmup": 200, "horizon": 5000,
		  "replications": 32, "min_replications": 3, "rel_precision": 0.5}`, &got)
	if status != http.StatusOK {
		t.Fatalf("status %d: %s", status, raw)
	}
	if !got.Converged || got.Replications >= 32 {
		t.Errorf("loose precision should stop early: ran %d, converged %v", got.Replications, got.Converged)
	}
}

func TestSimulateEndpointRejectsBadInput(t *testing.T) {
	ts := testServer(t)
	cases := []struct {
		name, body string
		wantStatus int
	}{
		{"invalid json", `{"servers": `, http.StatusBadRequest},
		{"no servers", `{"lambda": 8}`, http.StatusBadRequest},
		{"unknown field", `{"servers": 3, "lambda": 1, "horizons": 2}`, http.StatusBadRequest},
		{"unstable", `{"servers": 2, "lambda": 50}`, http.StatusUnprocessableEntity},
		{"bad confidence", `{"servers": 3, "lambda": 1, "horizon": 1000, "confidence": 2}`, http.StatusBadRequest},
		{"negative precision", `{"servers": 3, "lambda": 1, "horizon": 1000, "rel_precision": -0.1}`, http.StatusBadRequest},
		{"negative horizon", `{"servers": 3, "lambda": 1, "horizon": -5}`, http.StatusBadRequest},
	}
	for _, c := range cases {
		if status, raw := postJSON(t, ts.URL+"/v1/simulate", c.body, nil); status != c.wantStatus {
			t.Errorf("%s: status %d, want %d (%s)", c.name, status, c.wantStatus, raw)
		}
	}
}
