// Command mus-serve is the model-evaluation daemon: it exposes the Palmer
// & Mitrani solvers over HTTP/JSON, backed by the internal/service engine,
// so dashboards, capacity planners and sweep scripts share one worker pool
// and one solver cache instead of shelling out to one-shot CLI runs.
//
//	mus-serve -addr :8350 -workers 8 -cache 16384
//
// The wire contract — request/response DTOs, the structured error
// envelope with machine-readable codes, and the NDJSON streaming scheme —
// lives in package api; package client is the matching Go SDK. Endpoints
// (see README.md for schemas):
//
//	POST /v1/solve     — steady-state performance of one configuration
//	POST /v1/sweep     — batch evaluation over a λ or N grid; with
//	                     "Accept: application/x-ndjson" each grid point
//	                     streams back as soon as it is solved
//	POST /v1/optimize  — cost-optimal N (Fig. 5) or min N for an SLA (Fig. 9)
//	POST /v1/simulate  — replicated simulation with 95% confidence intervals
//	POST /v1/jobs      — submit a sweep/optimize/simulate payload as an
//	                     asynchronous job; GET /v1/jobs/{id} polls it,
//	                     GET /v1/jobs/{id}/result fetches the outcome (or,
//	                     for sweeps under Accept: application/x-ndjson, the
//	                     points solved so far mid-run), DELETE cancels it
//	GET  /v1/stats     — engine, worker-pool, cache and job-queue counters
//	GET  /v1/healthz   — load-balancer readiness probe
//
// Every response echoes an X-Request-ID header (generated when the caller
// sends none) that also appears in error envelopes, so client and server
// logs can be joined. Distribution fields default to the paper's fitted
// Sun parameters, so the smallest useful request is
//
//	curl -s localhost:8350/v1/solve -d '{"servers": 12, "lambda": 8}'
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/service"
	"repro/internal/service/jobs"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "mus-serve:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("mus-serve", flag.ContinueOnError)
	var (
		addr       = fs.String("addr", ":8350", "listen address")
		workers    = fs.Int("workers", 0, "solver worker-pool size (0 = one per CPU)")
		cache      = fs.Int("cache", service.DefaultCacheSize, "solver cache entries (negative disables)")
		jobQueue   = fs.Int("job-queue", jobs.DefaultQueueDepth, "bound on queued async jobs (full queue rejects with queue_full)")
		jobWorkers = fs.Int("job-workers", jobs.DefaultWorkers, "concurrently executing async jobs (solver concurrency stays bounded by -workers)")
		jobTTL     = fs.Duration("job-ttl", jobs.DefaultTTL, "retention of finished async jobs before garbage collection")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	eng := service.NewEngine(service.Config{Workers: *workers, CacheSize: *cache})
	sched := jobs.New(jobs.Config{Engine: eng, QueueDepth: *jobQueue, Workers: *jobWorkers, TTL: *jobTTL})
	defer sched.Close()
	srv := &http.Server{
		Addr:              *addr,
		Handler:           newServerJobs(eng, sched).handler(),
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       30 * time.Second,
		// Buffered sweeps take a while; NDJSON streams roll their own
		// per-point write deadline past this (see streamSweep).
		WriteTimeout: 5 * time.Minute,
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() {
		log.Printf("mus-serve: listening on %s (workers=%d, cache=%d)", *addr, eng.Workers(), *cache)
		errc <- srv.ListenAndServe()
	}()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
		log.Print("mus-serve: shutting down")
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(shutdownCtx); err != nil {
			return err
		}
		if err := <-errc; !errors.Is(err, http.ErrServerClosed) {
			return err
		}
		return nil
	}
}
