// Command mus-serve is the model-evaluation daemon: it exposes the Palmer
// & Mitrani solvers over HTTP/JSON, backed by the internal/service engine,
// so dashboards, capacity planners and sweep scripts share one worker pool
// and one solver cache instead of shelling out to one-shot CLI runs.
//
//	mus-serve -addr :8350 -workers 8 -cache 16384
//
// The wire contract — request/response DTOs, the structured error
// envelope with machine-readable codes, and the NDJSON streaming scheme —
// lives in package api; package client is the matching Go SDK. Endpoints
// (see README.md for schemas):
//
//	POST /v1/solve     — steady-state performance of one configuration
//	POST /v1/sweep     — batch evaluation over a λ or N grid; with
//	                     "Accept: application/x-ndjson" each grid point
//	                     streams back as soon as it is solved
//	POST /v1/optimize  — cost-optimal N (Fig. 5) or min N for an SLA (Fig. 9)
//	POST /v1/plan      — the same provisioning questions asked about the
//	                     serving tier itself; with "measured": true the
//	                     rates come from the daemon's own fitted
//	                     self-model (cluster-aggregated under -peers)
//	POST /v1/simulate  — replicated simulation with 95% confidence intervals
//	POST /v1/jobs      — submit a sweep/optimize/simulate payload as an
//	                     asynchronous job; GET /v1/jobs lists the retained
//	                     records, GET /v1/jobs/{id} polls one,
//	                     GET /v1/jobs/{id}/result fetches the outcome (or,
//	                     for sweeps under Accept: application/x-ndjson, the
//	                     points solved so far mid-run), DELETE cancels it
//	GET  /v1/stats     — engine, worker-pool, cache and job-queue counters
//	GET  /v1/cluster   — this node's cluster view: per-node health,
//	                     ownership counts, forward/local counters
//	GET  /v1/healthz   — load-balancer readiness probe
//
// Several daemons federate into one sharded cluster with -peers (the
// shared membership list) and -node-id (this node's entry): a rendezvous
// hash ring over the system fingerprint routes each configuration to one
// owner node — forwarding single-point requests, scattering sweep grids
// (synchronous and job-submitted alike) point-wise and gathering them
// back in grid order — with health-checked deterministic failover and the
// local engine as last resort. -data-dir makes the node durable: accepted
// jobs are write-ahead-logged (fsynced before the 202, batched on
// -fsync-interval after it) and replayed at boot, and a cache snapshot
// written every -snapshot-interval warms the solver caches so a restarted
// node rejoins hot. SIGTERM drains gracefully: new requests are rejected
// with 503 node_unavailable + Retry-After while in-flight requests and
// running jobs get -drain-timeout to finish, then the process exits 0.
//
// Every response echoes an X-Request-ID header (generated when the caller
// sends none) that also appears in error envelopes, so client and server
// logs can be joined. Distribution fields default to the paper's fitted
// Sun parameters, so the smallest useful request is
//
//	curl -s localhost:8350/v1/solve -d '{"servers": 12, "lambda": 8}'
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"
	"time"

	"repro/internal/admission"
	"repro/internal/cluster"
	"repro/internal/obs/olog"
	"repro/internal/obs/trace"
	"repro/internal/service"
	"repro/internal/service/jobs"
	"repro/internal/store"

	// Registered on a dedicated mux behind -pprof-addr only — never on
	// the API listener.
	"net/http/pprof"
)

// snapshotEntries caps how many cache entries (per cache, MRU-first) a
// periodic snapshot persists for warm restarts — enough to cover any
// realistic working set while keeping snapshot writes small.
const snapshotEntries = 4096

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "mus-serve:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("mus-serve", flag.ContinueOnError)
	var (
		addr         = fs.String("addr", ":8350", "listen address")
		workers      = fs.Int("workers", 0, "solver worker-pool size (0 = one per CPU)")
		cache        = fs.Int("cache", service.DefaultCacheSize, "solver cache entries (negative disables)")
		jobQueue     = fs.Int("job-queue", jobs.DefaultQueueDepth, "bound on queued async jobs (full queue rejects with queue_full)")
		jobWorkers   = fs.Int("job-workers", jobs.DefaultWorkers, "concurrently executing async jobs (solver concurrency stays bounded by -workers)")
		jobTTL       = fs.Duration("job-ttl", jobs.DefaultTTL, "retention of finished async jobs before garbage collection")
		admissionOn  = fs.Bool("admission", true, "self-modeling admission control: fit the tier's measured rates into the paper's model and shed load (with model-derived Retry-After) when the backlog cannot clear in time")
		admInterval  = fs.Duration("admission-interval", admission.DefaultInterval, "admission self-model refit period")
		admTarget    = fs.Duration("admission-target-wait", admission.DefaultTargetWait, "admission SLO: shed submissions the model predicts cannot start within this wait")
		peers        = fs.String("peers", "", "cluster membership: comma-separated [id=]url entries incl. this node (empty = standalone)")
		nodeID       = fs.String("node-id", "", "this node's ID in -peers (required with -peers; defaults to the bare URL for id-less entries)")
		dataDir      = fs.String("data-dir", "", "durability directory: job write-ahead log + cache snapshot (empty = in-memory only)")
		fsyncEvery   = fs.Duration("fsync-interval", store.DefaultFsyncInterval, "write-ahead-log fsync batching period (0 = fsync every append)")
		snapEvery    = fs.Duration("snapshot-interval", 30*time.Second, "cache-snapshot period for warm restarts (needs -data-dir; 0 disables)")
		drainTimeout = fs.Duration("drain-timeout", 15*time.Second, "graceful-shutdown budget for in-flight requests and running jobs")
		traceBuffer  = fs.Int("trace-buffer", trace.DefaultBuffer, "completed-span ring-buffer capacity per node (negative disables tracing)")
		traceSlow    = fs.Duration("trace-slow", trace.DefaultSlow, "latency at or above which a finished trace is always retained for GET /v1/traces")
		logLevel     = fs.String("log-level", "info", "structured request/job log threshold: debug, info, warn, error or off")
		pprofAddr    = fs.String("pprof-addr", "", "serve net/http/pprof on this extra address (empty = disabled; never exposed on -addr)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	lvl, err := olog.ParseLevel(*logLevel)
	if err != nil {
		return err
	}
	node := *nodeID
	if node == "" {
		node = "local"
	}
	logger := olog.New(os.Stderr, lvl, olog.F{K: "node", V: node})
	eng := service.NewEngine(service.Config{Workers: *workers, CacheSize: *cache})
	// One tracer per node, built before the scheduler so the boot replay
	// and every recovered job trace through it from the first instant.
	tracer := trace.New(trace.Config{Buffer: *traceBuffer, Slow: *traceSlow, Node: node})

	// The router is built before the scheduler: durable sweep jobs execute
	// through it, so it must exist when the scheduler replays its log and
	// resumes recovered jobs.
	var clu *cluster.Router
	if *peers != "" {
		nodes, err := cluster.ParsePeers(*peers)
		if err != nil {
			return err
		}
		if *nodeID == "" {
			return errors.New("-peers needs -node-id naming this node's entry")
		}
		if clu, err = cluster.New(cluster.Config{SelfID: *nodeID, Nodes: nodes}); err != nil {
			return err
		}
		clu.Start()
		defer clu.Close()
	}

	// -data-dir turns on durability: a write-ahead job log (replayed into
	// the scheduler below, so acknowledged jobs survive a crash) and a
	// solver/simulation cache snapshot that warms the engine at boot.
	var jlog *store.JobLog
	var snapPath string
	writeSnapshot := func() {}
	if *dataDir != "" {
		var err error
		if jlog, err = store.OpenJobLog(*dataDir, store.Options{FsyncInterval: *fsyncEvery}); err != nil {
			return fmt.Errorf("opening job log in %s: %w", *dataDir, err)
		}
		defer jlog.Close()
		snapPath = filepath.Join(*dataDir, "snapshot.json")
		var snap service.CacheSnapshot
		switch err := store.ReadSnapshot(snapPath, &snap); {
		case err == nil:
			log.Printf("mus-serve: warmed %d cache entries from %s", eng.WarmCaches(snap), snapPath)
		case !errors.Is(err, store.ErrNoSnapshot):
			log.Printf("mus-serve: cache snapshot unreadable, starting cold: %v", err)
		}
		writeSnapshot = func() {
			if err := store.WriteSnapshot(snapPath, eng.ExportCaches(snapshotEntries)); err != nil {
				log.Printf("mus-serve: cache snapshot failed: %v", err)
			}
		}
	}

	schedCfg := jobs.Config{Engine: eng, QueueDepth: *jobQueue, Workers: *jobWorkers, TTL: *jobTTL,
		Logger: logger, Log: jlog, NodeID: node, Tracer: tracer}
	if clu != nil {
		schedCfg.Router = clu // typed-nil guard: only assign a live router
	}
	sched := jobs.New(schedCfg)
	defer sched.Close()

	var hs *server
	if clu != nil {
		hs = newServerCluster(eng, sched, clu)
	} else {
		hs = newServerJobs(eng, sched)
	}
	if jlog != nil {
		jlog.RegisterMetrics(hs.reg)
	}
	hs.log = logger
	hs.tracer = tracer
	if *admissionOn {
		adm := hs.attachAdmission(admission.Config{
			Interval:   *admInterval,
			TargetWait: *admTarget,
			Logger:     logger,
		})
		adm.Start()
		defer adm.Close()
	}
	if *pprofAddr != "" {
		// Opt-in profiling on its own listener: bind -pprof-addr to
		// localhost (or a firewalled interface) — the API port never
		// serves /debug/pprof.
		pm := http.NewServeMux()
		pm.HandleFunc("/debug/pprof/", pprof.Index)
		pm.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		pm.HandleFunc("/debug/pprof/profile", pprof.Profile)
		pm.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		pm.HandleFunc("/debug/pprof/trace", pprof.Trace)
		go func() {
			log.Printf("mus-serve: pprof listening on %s", *pprofAddr)
			if err := http.ListenAndServe(*pprofAddr, pm); err != nil {
				log.Printf("mus-serve: pprof listener failed: %v", err)
			}
		}()
	}
	srv := &http.Server{
		Addr:              *addr,
		Handler:           hs.handler(),
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       30 * time.Second,
		// Buffered sweeps take a while; NDJSON streams roll their own
		// per-point write deadline past this (see streamSweep).
		WriteTimeout: 5 * time.Minute,
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if snapPath != "" && *snapEvery > 0 {
		// Periodic cache snapshots are advisory: each one atomically
		// replaces snapshot.json, and losing the newest just means a
		// slightly colder warm-up after the next boot.
		go func() {
			t := time.NewTicker(*snapEvery)
			defer t.Stop()
			for {
				select {
				case <-t.C:
					writeSnapshot()
				case <-ctx.Done():
					return
				}
			}
		}()
	}
	errc := make(chan error, 1)
	go func() {
		log.Printf("mus-serve: listening on %s (workers=%d, cache=%d, peers=%q)", *addr, eng.Workers(), *cache, *peers)
		errc <- srv.ListenAndServe()
	}()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
		// Graceful shutdown: flip into draining (new requests — health
		// probes included — get 503 node_unavailable + Retry-After, so
		// LBs and peers route around us), then give running async jobs
		// and in-flight HTTP requests the -drain-timeout budget before
		// the deferred Close cancels whatever is left. Jobs drain FIRST,
		// while the listener still accepts connections: the drain gate
		// exempts job reads precisely so pollers can observe terminal
		// states and fetch results, which requires a port that still
		// answers while the jobs finish.
		log.Printf("mus-serve: draining (timeout %s)", *drainTimeout)
		hs.startDrain()
		shutdownCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
		defer cancel()
		if err := sched.Drain(shutdownCtx); err != nil {
			log.Printf("mus-serve: job drain incomplete: %v (remaining jobs will be canceled)", err)
		}
		if err := srv.Shutdown(shutdownCtx); err != nil {
			log.Printf("mus-serve: http drain incomplete: %v", err)
		}
		// One last snapshot so the caches are as warm as possible when the
		// successor process boots.
		writeSnapshot()
		if err := <-errc; !errors.Is(err, http.ErrServerClosed) {
			return err
		}
		log.Print("mus-serve: drained, exiting")
		return nil
	}
}
