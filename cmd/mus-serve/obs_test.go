package main

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"testing"

	"repro/api"
	"repro/client"
)

// metricNameRE is the repo's naming contract (tools/metriclint enforces
// it at registration sites; this end applies it to the scrape output,
// where histogram series gain _bucket/_sum/_count suffixes).
var metricNameRE = regexp.MustCompile(`^mus_[a-z][a-z0-9]*(_[a-z0-9]+)+$`)

// scrape is a parsed Prometheus text exposition — a deliberately small
// parser private to these tests (the obs package's full parser lives in
// its own _test file and is not importable here).
type scrape struct {
	types  map[string]string  // family -> counter | gauge | histogram
	helped map[string]bool    // family -> saw a # HELP line
	vals   map[string]float64 // full series as printed -> value
	order  []string           // series in exposition order
}

// parseMetrics parses an exposition body, failing the test on any line
// that is neither a comment nor a well-formed sample.
func parseMetrics(t *testing.T, body string) *scrape {
	t.Helper()
	s := &scrape{types: map[string]string{}, helped: map[string]bool{}, vals: map[string]float64{}}
	for _, line := range strings.Split(body, "\n") {
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		if rest, ok := strings.CutPrefix(line, "# HELP "); ok {
			name, _, _ := strings.Cut(rest, " ")
			s.helped[name] = true
			continue
		}
		if rest, ok := strings.CutPrefix(line, "# TYPE "); ok {
			name, kind, ok := strings.Cut(rest, " ")
			if !ok {
				t.Fatalf("malformed TYPE line %q", line)
			}
			s.types[name] = kind
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue
		}
		// Sample: name[{labels}] value — labels may contain spaces inside
		// quotes, so split on the last space.
		i := strings.LastIndexByte(line, ' ')
		if i < 0 {
			t.Fatalf("malformed sample line %q", line)
		}
		series, raw := line[:i], line[i+1:]
		v, err := strconv.ParseFloat(raw, 64)
		if err != nil {
			t.Fatalf("sample %q has non-numeric value %q", series, raw)
		}
		if _, dup := s.vals[series]; dup {
			t.Fatalf("series %q exposed twice", series)
		}
		s.vals[series] = v
		s.order = append(s.order, series)
	}
	return s
}

// family strips labels and the histogram series suffixes off one series
// name, returning the name its TYPE/HELP lines use.
func family(series string) string {
	name, _, _ := strings.Cut(series, "{")
	for _, suf := range []string{"_bucket", "_sum", "_count"} {
		name = strings.TrimSuffix(name, suf)
	}
	return name
}

// sum adds every series of the named family whose label block contains
// all given substrings, returning the total and how many series matched.
func (s *scrape) sum(name string, contains ...string) (float64, int) {
	var total float64
	var n int
series:
	for _, ser := range s.order {
		if ser != name && !strings.HasPrefix(ser, name+"{") {
			continue
		}
		for _, c := range contains {
			if !strings.Contains(ser, c) {
				continue series
			}
		}
		total += s.vals[ser]
		n++
	}
	return total, n
}

// scrapeMetrics fetches and parses one node's /metrics.
func scrapeMetrics(t *testing.T, baseURL string) *scrape {
	t.Helper()
	resp, err := http.Get(baseURL + api.PathMetrics)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics: status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("GET /metrics: Content-Type %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return parseMetrics(t, string(body))
}

// checkExpositionWellFormed applies the format contract to a whole
// scrape: every series belongs to an announced family, every family has
// HELP and a known TYPE, names follow the mus_ convention, counters (and
// only counters) end in _total, and every histogram's buckets are
// cumulative with le="+Inf" equal to its _count and a _sum present.
func checkExpositionWellFormed(t *testing.T, s *scrape) {
	t.Helper()
	for _, ser := range s.order {
		fam := family(ser)
		if !metricNameRE.MatchString(fam) {
			t.Errorf("series %q: family %q violates mus_<subsystem>_<name> naming", ser, fam)
		}
		kind, ok := s.types[fam]
		if !ok {
			t.Errorf("series %q has no TYPE line for family %q", ser, fam)
			continue
		}
		if !s.helped[fam] {
			t.Errorf("family %q has no HELP line", fam)
		}
		switch kind {
		case "counter":
			if !strings.HasSuffix(fam, "_total") {
				t.Errorf("counter family %q does not end in _total", fam)
			}
		case "gauge", "histogram":
			if strings.HasSuffix(fam, "_total") {
				t.Errorf("%s family %q must not end in _total", kind, fam)
			}
		default:
			t.Errorf("family %q has unknown type %q", fam, kind)
		}
	}
	// Histogram consistency, grouped by family + labels-without-le.
	type group struct {
		buckets []float64 // in exposition order, which obs emits by ascending le
		inf     float64
		hasInf  bool
	}
	groups := map[string]*group{}
	for _, ser := range s.order {
		fam := family(ser)
		if s.types[fam] != "histogram" || !strings.Contains(ser, "_bucket") {
			continue
		}
		le := ""
		rest := ser
		for _, part := range strings.Split(strings.Trim(ser[strings.Index(ser, "{")+1:len(ser)-1], "}"), ",") {
			if v, ok := strings.CutPrefix(part, `le="`); ok {
				le = strings.TrimSuffix(v, `"`)
				rest = strings.Replace(rest, part, "", 1)
			}
		}
		if le == "" {
			t.Errorf("bucket series %q has no le label", ser)
			continue
		}
		key := fam + "|" + rest
		g := groups[key]
		if g == nil {
			g = &group{}
			groups[key] = g
		}
		if le == "+Inf" {
			g.inf, g.hasInf = s.vals[ser], true
		}
		g.buckets = append(g.buckets, s.vals[ser])
	}
	if len(groups) == 0 {
		t.Error("no histogram buckets in scrape; expected at least mus_http_request_duration_seconds")
	}
	for key, g := range groups {
		fam, labels, _ := strings.Cut(key, "|")
		for i := 1; i < len(g.buckets); i++ {
			if g.buckets[i] < g.buckets[i-1] {
				t.Errorf("histogram %s: buckets not cumulative at position %d: %v", key, i, g.buckets)
				break
			}
		}
		if !g.hasInf {
			t.Errorf("histogram %s: no le=\"+Inf\" bucket", key)
			continue
		}
		// The +Inf bucket must equal the _count series with the same labels.
		sub := strings.Trim(strings.ReplaceAll(strings.TrimPrefix(labels, fam+"_bucket"), ",,", ","), "{,}")
		count, n := s.sum(fam+"_count", strings.Split(sub, ",")...)
		if n != 1 || count != g.inf {
			t.Errorf("histogram %s: le=+Inf %v != _count %v (matched %d series)", key, g.inf, count, n)
		}
		if _, n := s.sum(fam+"_sum", strings.Split(sub, ",")...); n != 1 {
			t.Errorf("histogram %s: expected exactly one _sum series, found %d", key, n)
		}
	}
}

// TestMetricsEndpointExposition drives real traffic through a standalone
// server — solves (miss then hit), a malformed request, and an async job
// to completion — then requires the /metrics scrape to be well-formed and
// to account for every one of those events.
func TestMetricsEndpointExposition(t *testing.T) {
	ts := testServer(t)
	body := `{"servers": 12, "lambda": 8}`
	var solve api.SolveResponse
	if status, raw := postJSON(t, ts.URL+api.PathSolve, body, &solve); status != http.StatusOK {
		t.Fatalf("solve: %d %s", status, raw)
	}
	if status, _ := postJSON(t, ts.URL+api.PathSolve, body, &solve); status != http.StatusOK {
		t.Fatal("repeat solve failed")
	}
	var env api.ErrorEnvelope
	if status, _ := postJSON(t, ts.URL+api.PathSolve, `{"servers": -3}`, &env); status != http.StatusBadRequest {
		t.Fatalf("invalid solve: status %d, want 400", status)
	}
	c := client.New(ts.URL)
	if _, err := c.RunJob(context.Background(), api.NewSweepJob(api.SweepRequest{
		System: api.System{Servers: 8},
		Param:  api.ParamLambda,
		Values: []float64{1, 2, 3},
	}), nil); err != nil {
		t.Fatalf("job: %v", err)
	}

	s := scrapeMetrics(t, ts.URL)
	checkExpositionWellFormed(t, s)

	for _, want := range []struct {
		name     string
		contains []string
		min      float64
	}{
		{"mus_http_requests_total", []string{`route="/v1/solve"`, `code="200"`}, 2},
		{"mus_http_requests_total", []string{`route="/v1/solve"`, `code="400"`}, 1},
		{"mus_http_requests_total", []string{`route="/v1/jobs"`, `method="POST"`, `code="202"`}, 1},
		{"mus_http_request_duration_seconds_count", []string{`route="/v1/solve"`}, 3},
		{"mus_engine_evaluations_total", nil, 3}, // 2 solves + job counted per evaluation
		{"mus_cache_hits_total", []string{`cache="solver"`}, 1},
		{"mus_jobs_submitted_total", nil, 1},
		{"mus_jobs_transitions_total", []string{`state="done"`}, 1},
		{"mus_jobs_sweep_points_total", nil, 3},
		{"mus_engine_workers", nil, 1},
		{"mus_process_goroutines", nil, 1},
	} {
		got, n := s.sum(want.name, want.contains...)
		if n == 0 {
			t.Errorf("no series for %s %v", want.name, want.contains)
		} else if got < want.min {
			t.Errorf("%s %v = %v, want >= %v", want.name, want.contains, got, want.min)
		}
	}
	if up, n := s.sum("mus_process_uptime_seconds"); n != 1 || up < 0 {
		t.Errorf("mus_process_uptime_seconds = %v (%d series)", up, n)
	}
	if depth, n := s.sum("mus_jobs_queue_depth"); n != 1 || depth != 0 {
		t.Errorf("mus_jobs_queue_depth = %v (%d series), want 0 after job drained", depth, n)
	}
}

// TestClusterMetricsCountRoutingDecisions scatters a sweep across three
// nodes and reads the coordinator's /metrics: forwards and local serves
// counted, full membership visible and up; then kills one node and
// requires the next sweep to surface failovers and mark the peer down.
func TestClusterMetricsCountRoutingDecisions(t *testing.T) {
	nodes := startTestCluster(t, 3)
	c := client.New(nodes[0].url)
	if _, err := c.Sweep(context.Background(), sweepReqN(24)); err != nil {
		t.Fatal(err)
	}
	s := scrapeMetrics(t, nodes[0].url)
	checkExpositionWellFormed(t, s)
	if v, _ := s.sum("mus_cluster_forwards_total"); v == 0 {
		t.Error("no forwards counted after a scattered sweep")
	}
	if v, _ := s.sum("mus_cluster_local_served_total"); v == 0 {
		t.Error("no local serves counted after a scattered sweep")
	}
	if v, n := s.sum("mus_cluster_members"); n != 1 || v != 3 {
		t.Errorf("mus_cluster_members = %v (%d series), want 3", v, n)
	}
	if v, n := s.sum("mus_cluster_peer_up"); n != 3 || v != 3 {
		t.Errorf("peer_up sum = %v over %d series, want 3 over 3", v, n)
	}

	victim := nodes[1]
	victim.kill()
	if _, err := c.Sweep(context.Background(), sweepReqN(24)); err != nil {
		t.Fatalf("sweep after kill did not fail over: %v", err)
	}
	s = scrapeMetrics(t, nodes[0].url)
	if v, _ := s.sum("mus_cluster_failovers_total"); v == 0 {
		t.Error("no failovers counted after a node kill")
	}
	if v, n := s.sum("mus_cluster_peer_up", fmt.Sprintf("peer=%q", victim.url)); n != 1 || v != 0 {
		t.Errorf("killed peer up = %v (%d series), want 0", v, n)
	}
}

// TestForwardedRequestCarriesEdgeRequestID posts one configuration to
// every node with a distinct X-Request-ID: the two non-owner nodes must
// forward it one hop with the edge's ID intact (alongside the forwarded
// marker), and every edge response must echo the caller's ID.
func TestForwardedRequestCarriesEdgeRequestID(t *testing.T) {
	nodes := startTestCluster(t, 3)
	var mu sync.Mutex
	var forwarded []string
	for _, nd := range nodes {
		old := nd.swap.h.Load().(http.Handler)
		nd.swap.h.Store(http.Handler(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if r.Header.Get(api.HeaderForwarded) != "" {
				mu.Lock()
				forwarded = append(forwarded, r.Header.Get(api.HeaderRequestID))
				mu.Unlock()
			}
			old.ServeHTTP(w, r)
		})))
	}
	body := `{"servers": 12, "lambda": 8}`
	sent := map[string]bool{}
	for i, nd := range nodes {
		id := fmt.Sprintf("edge-req-%d", i)
		sent[id] = true
		req, err := http.NewRequest(http.MethodPost, nd.url+api.PathSolve, strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set("Content-Type", "application/json")
		req.Header.Set(api.HeaderRequestID, id)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body) //nolint:errcheck
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("node %d: status %d", i, resp.StatusCode)
		}
		if echo := resp.Header.Get(api.HeaderRequestID); echo != id {
			t.Errorf("node %d echoed request id %q, want %q", i, echo, id)
		}
	}
	mu.Lock()
	defer mu.Unlock()
	if len(forwarded) != 2 {
		t.Fatalf("saw %d forwarded requests (%v), want 2 (one per non-owner)", len(forwarded), forwarded)
	}
	seen := map[string]bool{}
	for _, id := range forwarded {
		if !sent[id] {
			t.Errorf("forwarded hop carried id %q, not one of the edge ids", id)
		}
		if seen[id] {
			t.Errorf("id %q forwarded twice", id)
		}
		seen[id] = true
	}
}
