package main

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/api"
	"repro/internal/admission"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/obs"
	"repro/internal/obs/olog"
	"repro/internal/obs/trace"
	"repro/internal/service"
	"repro/internal/service/jobs"
)

// server wires the evaluation engine and the job scheduler to the HTTP
// API. Every wire type lives in package api — the handlers below only
// decode, validate, dispatch and encode; all state lives in the engine
// and the scheduler, the server itself only counts requests.
//
// With a cluster router attached (-peers), the single-point handlers
// forward each request to its ring owner and the sweep handler scatters
// grids point-wise across the live membership; requests carrying
// api.HeaderForwarded already crossed their one allowed hop and are
// always served locally.
type server struct {
	eng   *service.Engine
	sched *jobs.Scheduler
	clu   *cluster.Router // nil on a standalone node
	// adm is the self-modeling admission controller (nil with -admission
	// off): it periodically fits the serving tier's own measured rates into
	// a core.System, solves it, and turns the predictions into the
	// load-shedding decision and the model-derived Retry-After hints.
	adm      *admission.Controller
	started  time.Time
	requests atomic.Uint64
	// reg is the node's metric registry: every layer registers its
	// collectors here at construction, handlers resolve their per-route
	// instruments at route-table build, and GET /metrics renders it all.
	reg *obs.Registry
	// log emits one structured line per request (and is handed to the job
	// scheduler for transition lines). Defaults to discard; main swaps in
	// the -log-level logger before building the handler.
	log *olog.Logger
	// tracer records this node's completed spans. instrument starts one
	// root span per request (continuing an incoming traceparent, minting a
	// trace otherwise); the /v1/traces handlers read it back. Constructors
	// install a default so every server traces; main swaps in the
	// flag-configured tracer before building the handler.
	tracer *trace.Tracer
	// draining flips at the start of graceful shutdown: every request from
	// then on is rejected with 503 node_unavailable + Retry-After, so load
	// balancers and cluster peers route around this node while in-flight
	// work finishes.
	draining atomic.Bool
}

// newServerJobs builds a server over an engine and an explicit scheduler
// (flag-configured in main, fake-engined or t.Cleanup-closed in tests).
// The caller owns the scheduler's lifecycle — Close it on shutdown. The
// metric registry is built (and the engine and scheduler registered on
// it) here, so every server — production or test — scrapes identically.
func newServerJobs(eng *service.Engine, sched *jobs.Scheduler) *server {
	s := &server{
		eng:     eng,
		sched:   sched,
		started: time.Now(),
		reg:     obs.NewRegistry(),
		log:     olog.Nop(),
		tracer:  trace.New(trace.Config{}),
	}
	eng.RegisterMetrics(s.reg)
	sched.RegisterMetrics(s.reg)
	obs.RegisterRuntime(s.reg, "")
	s.reg.GaugeFunc("mus_process_uptime_seconds",
		"Seconds since the daemon started.",
		func() float64 { return time.Since(s.started).Seconds() })
	s.reg.GaugeFunc("mus_process_goroutines",
		"Current goroutine count.",
		func() float64 { return float64(runtime.NumGoroutine()) })
	return s
}

// newServerCluster builds a clustered server: newServerJobs plus a
// routing tier (whose counters join the registry). The caller owns the
// router's lifecycle too — Start it before serving, Close it on shutdown.
func newServerCluster(eng *service.Engine, sched *jobs.Scheduler, clu *cluster.Router) *server {
	s := newServerJobs(eng, sched)
	s.clu = clu
	clu.RegisterMetrics(s.reg)
	return s
}

// attachAdmission wires the self-modeling admission controller into the
// server: counters are sampled from the job scheduler, self-model solves
// run through the engine (sharing its worker pool and cache), and the
// controller's mus_admission_* series join the node registry. The caller
// owns the controller's lifecycle — Start it before serving, Close it on
// shutdown. Call before handler(): registration panics on a duplicate.
func (s *server) attachAdmission(cfg admission.Config) *admission.Controller {
	cfg.Sample = func() admission.Flow {
		f := s.sched.Flow()
		return admission.Flow{
			Arrivals:    float64(f.Offered),
			Completions: float64(f.Completed),
			Busy:        float64(f.Running),
			Backlog:     f.Queued + f.Running,
			Servers:     f.Workers,
		}
	}
	cfg.Evaluate = s.eng.Evaluate
	c := admission.New(cfg)
	c.RegisterMetrics(s.reg)
	s.adm = c
	return c
}

// handler builds the /v1 route table behind the middleware chain.
// Request-ID propagation wraps everything; per-route instrumentation
// (latency histogram, in-flight gauge, status-code counters, one trace
// line per request) wraps only the real API routes, so health probes,
// 404s and wrong-verb rejections never drown the traffic signal.
// /v1/healthz and the GET /metrics scrape target stay uninstrumented by
// design — load balancers and scrapers poll them continuously. Call
// handler once per server: the per-route instruments register on build,
// and re-registration panics.
func (s *server) handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST "+api.PathSolve, s.instrument(http.MethodPost, api.PathSolve, s.handleSolve))
	mux.HandleFunc("POST "+api.PathSweep, s.instrument(http.MethodPost, api.PathSweep, s.handleSweep))
	mux.HandleFunc("POST "+api.PathOptimize, s.instrument(http.MethodPost, api.PathOptimize, s.handleOptimize))
	mux.HandleFunc("POST "+api.PathPlan, s.instrument(http.MethodPost, api.PathPlan, s.handlePlan))
	mux.HandleFunc("POST "+api.PathSimulate, s.instrument(http.MethodPost, api.PathSimulate, s.handleSimulate))
	mux.HandleFunc("POST "+api.PathJobs, s.instrument(http.MethodPost, api.PathJobs, s.handleJobSubmit))
	mux.HandleFunc("GET "+api.PathJobs, s.instrument(http.MethodGet, api.PathJobs, s.handleJobList))
	mux.HandleFunc("GET "+api.PathJobs+"/{id}", s.instrument(http.MethodGet, api.PathJobs+"/{id}", s.handleJobStatus))
	mux.HandleFunc("GET "+api.PathJobs+"/{id}/result", s.instrument(http.MethodGet, api.PathJobs+"/{id}/result", s.handleJobResult))
	mux.HandleFunc("DELETE "+api.PathJobs+"/{id}", s.instrument(http.MethodDelete, api.PathJobs+"/{id}", s.handleJobCancel))
	mux.HandleFunc("GET "+api.PathStats, s.instrument(http.MethodGet, api.PathStats, s.handleStats))
	// The trace read endpoints stay uninstrumented (like /v1/cluster):
	// reading traces must not generate new ones, and peers gather through
	// them continuously when a trace is inspected.
	mux.HandleFunc("GET "+api.PathTraces, s.handleTraceList)
	mux.HandleFunc("GET "+api.PathTraces+"/{id}", s.handleTrace)
	mux.HandleFunc("GET "+api.PathCluster, s.handleCluster)
	mux.HandleFunc("GET "+api.PathHealthz, s.handleHealthz)
	mux.Handle("GET "+api.PathMetrics, s.reg.Handler())
	return chain(mux, withRequestID, s.withDraining)
}

// withDraining rejects new work — health probes included, so load
// balancers and peer routers stop sending traffic — once graceful
// shutdown has begun. The 503 carries the node_unavailable code and a
// Retry-After hint; in-flight requests accepted before the flag flipped
// are unaffected and drain normally. Job reads (GET under /v1/jobs) stay
// open: the drain deliberately waits for running jobs to finish, and
// that wait is only worth its budget if a polling client can still
// observe the terminal state and fetch the result before exit. GET
// /metrics stays open too: the drain window is exactly when operators
// watch the in-flight and queue-depth gauges fall.
func (s *server) withDraining(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		exempt := r.Method == http.MethodGet &&
			(r.URL.Path == api.PathJobs || strings.HasPrefix(r.URL.Path, api.PathJobs+"/") ||
				r.URL.Path == api.PathMetrics)
		if s.draining.Load() && !exempt {
			w.Header().Set("Retry-After", strconv.Itoa(api.RetryAfterDraining))
			writeJSON(w, http.StatusServiceUnavailable, api.ErrorEnvelope{
				Error:     api.NodeUnavailable("node is draining for shutdown; retry elsewhere or after a delay"),
				RequestID: requestID(r.Context()),
			})
			return
		}
		next.ServeHTTP(w, r)
	})
}

// startDrain flips the server into draining mode — the HTTP gate and the
// scheduler's own submission gate in one breath. Both flips matter: a
// submission that slipped past the middleware check before the flag
// flipped must still be rejected by the scheduler, or it would be
// accepted into a process that is about to exit and (on nodes without a
// job log) silently lost.
func (s *server) startDrain() {
	s.draining.Store(true)
	s.sched.BeginDrain()
}

// forwarded reports whether the request already crossed its one allowed
// cluster hop and must be served locally.
func forwarded(r *http.Request) bool { return r.Header.Get(api.HeaderForwarded) != "" }

// shouldRoute reports whether a request enters the cluster routing tier:
// a router exists and the request has not been forwarded yet.
func (s *server) shouldRoute(r *http.Request) bool { return s.clu != nil && !forwarded(r) }

// middleware wraps a handler with one cross-cutting concern.
type middleware func(http.Handler) http.Handler

// chain composes middlewares around h; the first listed is outermost.
func chain(h http.Handler, mws ...middleware) http.Handler {
	for i := len(mws) - 1; i >= 0; i-- {
		h = mws[i](h)
	}
	return h
}

// withRequestID propagates X-Request-ID: an incoming ID is reused (so
// callers can stitch their own traces), an absent one is generated, and
// either way the ID is echoed on the response and stored in the request
// context — where error envelopes, trace lines, cluster forwards (the
// SDK stamps the context ID on outgoing requests) and async job records
// all read it back, so one ID follows the request across nodes.
func withRequestID(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		id := r.Header.Get(api.HeaderRequestID)
		if id == "" || len(id) > 128 {
			id = newRequestID()
		}
		w.Header().Set(api.HeaderRequestID, id)
		next.ServeHTTP(w, r.WithContext(api.ContextWithRequestID(r.Context(), id)))
	})
}

// newRequestID draws a 64-bit random hex ID.
func newRequestID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		return "0000000000000000"
	}
	return hex.EncodeToString(b[:])
}

// requestID recovers the correlation ID stored by withRequestID.
func requestID(ctx context.Context) string {
	return api.RequestIDFrom(ctx)
}

// note is the per-request mutable slot handlers annotate (ring owner,
// job ID) so the middleware's one summary line carries routing facts only
// the handler knows. Stored by pointer in the request context.
type note struct {
	owner string // ring owner of the request's fingerprint ("" until known)
	job   string // async job ID touched by this request
}

// noteKey carries the *note slot through the request context.
type noteKey struct{}

// noteFrom recovers the note slot, or nil outside instrumented routes.
func noteFrom(ctx context.Context) *note {
	t, _ := ctx.Value(noteKey{}).(*note)
	return t
}

// setTraceOwner records the ring owner on the request's note slot.
func setTraceOwner(ctx context.Context, owner string) {
	if t := noteFrom(ctx); t != nil {
		t.owner = owner
	}
}

// setTraceJob records the async job ID on the request's note slot.
func setTraceJob(ctx context.Context, id string) {
	if t := noteFrom(ctx); t != nil {
		t.job = id
	}
}

// routeMetrics is one route's pre-resolved instrument set: the latency
// histogram and in-flight gauge are fixed at registration, while the
// per-status-code counters materialise lazily (first 404, first 499, …)
// behind a sync.Map so the steady-state path is one lock-free load.
type routeMetrics struct {
	reg           *obs.Registry
	method, route string
	duration      *obs.Histogram
	inflight      *obs.Gauge

	mu    sync.Mutex // serialises first-time counter registration only
	codes sync.Map   // int status code → *obs.Counter
}

// counterFor returns the route's request counter for one status code,
// registering the series on first sight.
func (m *routeMetrics) counterFor(code int) *obs.Counter {
	if c, ok := m.codes.Load(code); ok {
		return c.(*obs.Counter)
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if c, ok := m.codes.Load(code); ok {
		return c.(*obs.Counter)
	}
	c := m.reg.Counter("mus_http_requests_total",
		"HTTP requests served, by route, method and status code.",
		obs.L("route", m.route), obs.L("method", m.method), obs.L("code", strconv.Itoa(code)))
	m.codes.Store(code, c)
	return c
}

// statusWriter captures the response status for metrics and trace lines.
// Unwrap keeps http.NewResponseController working, so the NDJSON
// streaming paths still reach the real connection's Flush and
// SetWriteDeadline through it.
type statusWriter struct {
	http.ResponseWriter
	code int
}

func (w *statusWriter) WriteHeader(code int) {
	if w.code == 0 {
		w.code = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if w.code == 0 {
		w.code = http.StatusOK
	}
	return w.ResponseWriter.Write(b)
}

// Unwrap exposes the underlying writer to http.NewResponseController.
func (w *statusWriter) Unwrap() http.ResponseWriter { return w.ResponseWriter }

// instrument wraps one route's handler with the node's request
// observability: the /v1/stats request counter, the per-route latency
// histogram, in-flight gauge and status-code counters, and one
// structured trace line per request (id, route, node, owner, forwarded,
// status, duration). The instruments are resolved here, at route-table
// build — the per-request path records through held pointers and never
// touches the registry lock.
func (s *server) instrument(method, route string, h http.HandlerFunc) http.HandlerFunc {
	m := &routeMetrics{
		reg:    s.reg,
		method: method,
		route:  route,
		duration: s.reg.Histogram("mus_http_request_duration_seconds",
			"HTTP request latency by route, buckets in seconds.",
			nil, obs.L("route", route), obs.L("method", method)),
		inflight: s.reg.Gauge("mus_http_in_flight_requests",
			"Requests currently being served, by route.",
			obs.L("route", route), obs.L("method", method)),
	}
	return func(w http.ResponseWriter, r *http.Request) {
		s.requests.Add(1)
		m.inflight.Inc()
		start := time.Now()
		tr := &note{}
		ctx := context.WithValue(r.Context(), noteKey{}, tr)
		// The root span continues an incoming trace context (W3C
		// traceparent, or the repo-native alias) and mints a new trace
		// otherwise; the span context rides r.Context() so every seam below
		// — admission, engine, store, cluster forwards — parents to it, and
		// the client SDK re-serializes it onto outgoing hops.
		parent, ok := trace.ParseTraceparent(r.Header.Get(api.HeaderTraceparent))
		if !ok {
			parent, _ = trace.ParseTraceparent(r.Header.Get(api.HeaderMusTrace))
		}
		span, ctx := s.tracer.StartRoot(ctx, "mus.http.request", parent)
		span.Set(trace.Str("route", route))
		span.Set(trace.Str("method", method))
		var traceID, spanID string
		if sc := span.Context(); sc.Valid() {
			traceID, spanID = sc.TraceID.String(), sc.SpanID.String()
			// Echo the trace ID so any caller can go straight to
			// GET /v1/traces/{id} without having minted the trace itself.
			w.Header().Set(api.HeaderMusTrace, traceID)
		}
		r = r.WithContext(ctx)
		sw := &statusWriter{ResponseWriter: w}
		h(sw, r)
		elapsed := time.Since(start)
		m.inflight.Dec()
		code := sw.code
		if code == 0 {
			code = http.StatusOK // handler wrote nothing: net/http sends 200
		}
		span.Set(trace.Int("status", int64(code)))
		if code >= http.StatusInternalServerError {
			span.FailMsg(http.StatusText(code))
		}
		span.End() // after End the span is recycled; only traceID/spanID survive
		// The latency observation carries the trace ID as its exemplar, so
		// a slow histogram bucket links straight to a retained trace.
		m.duration.ObserveWithExemplar(elapsed.Seconds(), traceID)
		m.counterFor(code).Inc()
		if !s.log.Enabled(olog.Info) {
			return
		}
		// The logger's base fields already carry the node id (main.go);
		// adding it again here would duplicate the key in every line.
		fields := []olog.F{
			{K: "id", V: requestID(r.Context())},
			{K: "route", V: route},
			{K: "method", V: method},
			{K: "status", V: code},
			{K: "duration_ms", V: float64(elapsed) / float64(time.Millisecond)},
		}
		if traceID != "" {
			fields = append(fields, olog.F{K: "trace", V: traceID}, olog.F{K: "span", V: spanID})
		}
		if tr.owner != "" {
			fields = append(fields, olog.F{K: "owner", V: tr.owner})
		}
		if tr.job != "" {
			fields = append(fields, olog.F{K: "job", V: tr.job})
		}
		if forwarded(r) {
			fields = append(fields, olog.F{K: "forwarded", V: true})
		}
		s.log.Info("request", fields...)
	}
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", api.ContentTypeJSON)
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v) // response writer errors have no recovery path
}

// writeError classifies err into the wire taxonomy (client cancellations
// become 499, deadline expiry 504, typed errors keep their code, anything
// else 500) and renders the error envelope with the request ID. Every
// backpressure rejection — queue_full 429 and node_unavailable 503,
// whichever layer raised it — carries a Retry-After hint: the SDK's
// backpressure contract only retries a 429 on the server's explicit
// invitation, so a hintless 429 strands the caller. The hint is the
// admission self-model's predicted drain time when a model exists, the
// static fallback otherwise.
func (s *server) writeError(w http.ResponseWriter, r *http.Request, err error) {
	ae := api.Classify(err)
	switch ae.Code {
	case api.CodeNodeUnavailable:
		w.Header().Set("Retry-After", strconv.Itoa(s.retryAfterHint(api.RetryAfterDraining)))
	case api.CodeQueueFull:
		w.Header().Set("Retry-After", strconv.Itoa(s.retryAfterHint(api.RetryAfterQueueFull)))
	}
	writeJSON(w, ae.HTTPStatus(), api.ErrorEnvelope{Error: ae, RequestID: requestID(r.Context())})
}

// retryAfterHint picks the Retry-After value for a backpressure
// rejection: the admission controller's model-derived drain estimate
// when one is fitted, the layer's static fallback otherwise.
func (s *server) retryAfterHint(fallback int) int {
	if s.adm != nil {
		if secs := s.adm.RetryAfterSeconds(); secs > 0 {
			return secs
		}
	}
	return fallback
}

func (s *server) decodeBody(w http.ResponseWriter, r *http.Request, v any) bool {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		s.writeError(w, r, api.InvalidArgument("body", "decode request: %v", err))
		return false
	}
	return true
}

func (s *server) handleSolve(w http.ResponseWriter, r *http.Request) {
	var req api.SolveRequest
	if !s.decodeBody(w, r, &req) {
		return
	}
	sys, m, err := req.Resolve()
	if err != nil {
		s.writeError(w, r, err)
		return
	}
	if !sys.Stable() {
		s.writeError(w, r, api.Unstable(sys))
		return
	}
	if s.shouldRoute(r) {
		setTraceOwner(r.Context(), s.clu.Owner(sys.Fingerprint()))
		resp, served, err := s.clu.ForwardSolve(r.Context(), sys.Fingerprint(), req)
		if served {
			if err != nil {
				s.writeError(w, r, err)
				return
			}
			writeJSON(w, http.StatusOK, resp)
			return
		}
	}
	perf, err := s.eng.Evaluate(r.Context(), sys, m)
	if err != nil {
		s.writeError(w, r, err)
		return
	}
	resp := api.SolveResponse{
		Fingerprint:  sys.Fingerprint(),
		Method:       m.String(),
		Availability: sys.Availability(),
		Modes:        sys.Modes(),
		Stable:       true,
		Perf:         api.FromPerformance(perf),
	}
	if req.HoldingCost > 0 || req.ServerCost > 0 {
		cm := core.CostModel{HoldingCost: req.HoldingCost, ServerCost: req.ServerCost}
		c := cm.Cost(perf.MeanJobs, sys.Servers)
		resp.Cost = &c
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleSweep evaluates a grid. With "Accept: application/x-ndjson" the
// response streams one api.SweepPoint per line, flushed as each point is
// solved — a 10k-point sweep starts returning in milliseconds; otherwise
// the points are buffered into one api.SweepResponse.
func (s *server) handleSweep(w http.ResponseWriter, r *http.Request) {
	var req api.SweepRequest
	if !s.decodeBody(w, r, &req) {
		return
	}
	systems, err := req.Systems() // validates and expands the grid
	if err != nil {
		s.writeError(w, r, err)
		return
	}
	m, err := api.ParseMethod(req.Method) // cannot fail after Systems
	if err != nil {
		s.writeError(w, r, err)
		return
	}
	if s.shouldRoute(r) {
		s.clusterSweep(w, r, req, systems, m)
		return
	}
	jobs := make([]service.Job, len(systems))
	for i, sys := range systems {
		jobs[i] = service.Job{System: sys, Method: m}
	}
	if r.Header.Get("Accept") == api.ContentTypeNDJSON {
		s.streamSweep(w, r, req, jobs)
		return
	}
	results := s.eng.EvaluateBatch(r.Context(), jobs)
	resp := api.SweepResponse{Method: m.String(), Param: req.Param, Points: make([]api.SweepPoint, len(results))}
	for i, res := range results {
		resp.Points[i] = sweepPointOf(req, res)
	}
	writeJSON(w, http.StatusOK, resp)
}

// clusterSweep scatters a sweep grid across the cluster by per-point
// fingerprint and gathers the points back in grid order — buffered into
// one api.SweepResponse, or streamed as NDJSON under Accept:
// application/x-ndjson exactly like the single-node path. The local
// engine evaluates this node's own shard (and is the failover of last
// resort for everyone else's).
func (s *server) clusterSweep(w http.ResponseWriter, r *http.Request, req api.SweepRequest, systems []core.System, m core.Method) {
	fps := make([]string, len(systems))
	for i, sys := range systems {
		fps[i] = sys.Fingerprint()
	}
	local := func(ctx context.Context, indices []int, out func(api.SweepPoint)) error {
		sub := make([]service.Job, len(indices))
		for k, i := range indices {
			sub[k] = service.Job{System: systems[i], Method: m}
		}
		return s.eng.EvaluateStream(ctx, sub, func(res service.Result) error {
			pt := api.SweepPoint{Index: indices[res.Index], Value: req.Values[indices[res.Index]]}
			if res.Err != nil {
				pt.Error = res.Err.Error()
			} else {
				perf := api.FromPerformance(res.Perf)
				pt.Perf = &perf
			}
			out(pt)
			return nil
		})
	}
	if r.Header.Get("Accept") == api.ContentTypeNDJSON {
		// The 200 is already on the wire; mid-stream failures can only
		// truncate, exactly as in the single-node streaming path.
		_ = s.clu.Sweep(r.Context(), req, fps, ndjsonEmitter(w), local)
		return
	}
	points := make([]api.SweepPoint, 0, len(systems))
	err := s.clu.Sweep(r.Context(), req, fps, func(pt api.SweepPoint) error {
		points = append(points, pt)
		return nil
	}, local)
	if err != nil {
		s.writeError(w, r, err)
		return
	}
	writeJSON(w, http.StatusOK, api.SweepResponse{Method: m.String(), Param: req.Param, Points: points})
}

// handleCluster reports this node's cluster view (GET /v1/cluster):
// per-node health and routing counters from the router, plus the local
// engine's cache-affinity numbers. A standalone node answers with
// enabled=false and its local counters only.
func (s *server) handleCluster(w http.ResponseWriter, r *http.Request) {
	st := s.eng.Stats()
	resp := api.ClusterResponse{}
	if s.clu != nil {
		resp = s.clu.Stats()
	}
	resp.CacheHitRate = st.Cache.HitRate()
	resp.Evaluations = st.Evaluations
	resp.Solves = st.Solves
	resp.Obs = s.reg.Snapshot()
	writeJSON(w, http.StatusOK, resp)
}

// streamPointTimeout bounds the wait for any single streamed grid point.
// The server's WriteTimeout is one absolute deadline for the whole
// response — flushing does not extend it — so streamSweep rolls the
// write deadline forward per point instead: a sweep may stream for hours
// as long as points keep landing, while a stalled client (or one stuck
// point) still tears the connection down.
const streamPointTimeout = 5 * time.Minute

// ndjsonEmitter switches the response into NDJSON streaming mode and
// returns the per-point emit function both sweep paths (single-node and
// cluster scatter) share: each point is encoded, flushed, and rolls the
// write deadline forward so a sweep may stream past the server-wide
// WriteTimeout as long as points keep landing. Deadline errors are
// ignored so transports without deadline support still stream.
func ndjsonEmitter(w http.ResponseWriter) func(api.SweepPoint) error {
	rc := http.NewResponseController(w)
	_ = rc.SetWriteDeadline(time.Now().Add(streamPointTimeout))
	w.Header().Set("Content-Type", api.ContentTypeNDJSON)
	w.WriteHeader(http.StatusOK)
	enc := json.NewEncoder(w)
	return func(pt api.SweepPoint) error {
		_ = rc.SetWriteDeadline(time.Now().Add(streamPointTimeout))
		if err := enc.Encode(pt); err != nil {
			return err
		}
		return rc.Flush()
	}
}

// streamSweep renders a sweep as NDJSON: each grid point is written and
// flushed as soon as the engine solves it, in grid order. A disconnecting
// client cancels the remaining evaluations through the request context.
func (s *server) streamSweep(w http.ResponseWriter, r *http.Request, req api.SweepRequest, jobs []service.Job) {
	emit := ndjsonEmitter(w)
	// The stream already carries a 200; mid-stream failures (client gone,
	// context cancelled) can only terminate it early.
	_ = s.eng.EvaluateStream(r.Context(), jobs, func(res service.Result) error {
		return emit(sweepPointOf(req, res))
	})
}

// sweepPointOf converts one engine result to its wire form.
func sweepPointOf(req api.SweepRequest, res service.Result) api.SweepPoint {
	pt := api.SweepPoint{Index: res.Index, Value: req.Values[res.Index]}
	if res.Err != nil {
		pt.Error = res.Err.Error()
	} else {
		perf := api.FromPerformance(res.Perf)
		pt.Perf = &perf
	}
	return pt
}

// handleOptimize answers the paper's two provisioning questions: with a
// target_response it returns the smallest N meeting the SLA (Figure 9);
// otherwise it minimises C = c₁L + c₂N over [min_servers, max_servers]
// (Figure 5).
func (s *server) handleOptimize(w http.ResponseWriter, r *http.Request) {
	var req api.OptimizeRequest
	if !s.decodeBody(w, r, &req) {
		return
	}
	base, m, minN, maxN, err := req.Resolve()
	if err != nil {
		s.writeError(w, r, err)
		return
	}
	if req.TargetResponse > 0 {
		pt, err := s.eng.MinServersForResponseTime(r.Context(), base, req.TargetResponse, minN, maxN, m)
		if err != nil {
			s.writeError(w, r, unsatisfiable(err))
			return
		}
		writeJSON(w, http.StatusOK, api.OptimizeResponse{
			Objective: fmt.Sprintf("min N in [%d, %d] with W ≤ %g", minN, maxN, req.TargetResponse),
			Servers:   pt.Servers,
			Perf:      api.FromPerformance(pt.Perf),
		})
		return
	}
	cm := core.CostModel{HoldingCost: req.HoldingCost, ServerCost: req.ServerCost}
	best, err := s.eng.OptimizeServers(r.Context(), base, cm, minN, maxN, m)
	if err != nil {
		s.writeError(w, r, unsatisfiable(err))
		return
	}
	writeJSON(w, http.StatusOK, api.OptimizeResponse{
		Objective: fmt.Sprintf("min %g·L + %g·N over [%d, %d]", cm.HoldingCost, cm.ServerCost, minN, maxN),
		Servers:   best.Servers,
		Cost:      &best.Cost,
		Perf:      api.FromPerformance(best.Perf),
	})
}

// unsatisfiable classifies an optimisation failure: cancellations and
// deadline expiries keep their codes, everything else — no stable N, no
// N meeting the target — is a well-formed question with no answer (422),
// not an internal failure.
func unsatisfiable(err error) error {
	if ae := api.Classify(err); ae.Code != api.CodeInternal {
		return ae
	}
	return &api.Error{Code: api.CodeUnsatisfiable, Message: err.Error()}
}

// handlePlan answers the provisioning questions of /v1/optimize about
// the serving tier itself (POST /v1/plan) — the planning half of the
// self-modeling loop. In request mode the caller supplies the rates; in
// measured mode ("measured": true) they come from the admission
// controller's fitted self-model, aggregated across every live cluster
// node when clustering is enabled: arrival rates sum (each node sheds
// its own offered load), per-server service, breakdown and repair rates
// average. Either way the answer is computed by the same
// core.OptimizeServers / MinServersForResponseTime search the offline
// optimizer runs, so a plan fed the paper's §5 parameters agrees with
// Figure 5 exactly.
func (s *server) handlePlan(w http.ResponseWriter, r *http.Request) {
	var req api.PlanRequest
	if !s.decodeBody(w, r, &req) {
		return
	}
	m, minN, maxN, err := req.ResolveObjective()
	if err != nil {
		s.writeError(w, r, err)
		return
	}
	resp := api.PlanResponse{Source: api.PlanSourceRequest}
	var base core.System
	if req.Measured {
		rates, nodes, err := s.measuredRates(r.Context())
		if err != nil {
			s.writeError(w, r, err)
			return
		}
		base = core.System{
			Servers:     1, // N is the decision variable
			ArrivalRate: rates.Lambda,
			ServiceRate: rates.Mu,
			Operative:   dist.Exp(rates.Xi),
			Repair:      dist.Exp(rates.Eta),
		}
		resp.Source = api.PlanSourceMeasured
		resp.Nodes = nodes
		resp.Rates = rates
	} else {
		if base, err = req.BaseSystem(); err != nil {
			s.writeError(w, r, err)
			return
		}
		resp.Rates = api.PlanRates{
			Lambda: base.ArrivalRate,
			Mu:     base.ServiceRate,
			Xi:     base.Operative.Rate(),
			Eta:    base.Repair.Rate(),
		}
	}
	minStable, err := core.MinServersForStability(base)
	if err != nil {
		s.writeError(w, r, unsatisfiable(fmt.Errorf("no fleet size stabilises the planned load: %w", err)))
		return
	}
	resp.MinStable = minStable
	resp.Availability = base.Availability()
	if req.TargetResponse > 0 {
		pt, err := s.eng.MinServersForResponseTime(r.Context(), base, req.TargetResponse, minN, maxN, m)
		if err != nil {
			s.writeError(w, r, unsatisfiable(err))
			return
		}
		resp.Objective = fmt.Sprintf("min N in [%d, %d] with W ≤ %g", minN, maxN, req.TargetResponse)
		resp.Servers = pt.Servers
		resp.Perf = api.FromPerformance(pt.Perf)
	} else {
		cm := core.CostModel{HoldingCost: req.HoldingCost, ServerCost: req.ServerCost}
		best, err := s.eng.OptimizeServers(r.Context(), base, cm, minN, maxN, m)
		if err != nil {
			s.writeError(w, r, unsatisfiable(err))
			return
		}
		resp.Objective = fmt.Sprintf("min %g·L + %g·N over [%d, %d]", cm.HoldingCost, cm.ServerCost, minN, maxN)
		resp.Servers = best.Servers
		resp.Cost = &best.Cost
		resp.Perf = api.FromPerformance(best.Perf)
	}
	writeJSON(w, http.StatusOK, resp)
}

// measuredRates assembles the rate quadruple for a measured-mode plan:
// this node's fitted self-model, joined with every live peer's fitted
// rates read from their /v1/cluster metric snapshots (the exported
// mus_admission_* gauge keys are the wire contract). Arrival rates are
// additive — each node sees its own slice of the offered load — while
// the per-server service, breakdown and repair rates are averaged over
// the nodes that measured them.
func (s *server) measuredRates(ctx context.Context) (api.PlanRates, int, error) {
	if s.adm == nil {
		return api.PlanRates{}, 0, api.InvalidArgument("measured",
			"measured mode needs the admission controller (-admission) enabled")
	}
	local, ok := s.adm.MeasuredRates()
	if !ok {
		return api.PlanRates{}, 0, &api.Error{Code: api.CodeUnsatisfiable,
			Message: "no fitted self-model yet: the tier has not served enough traffic to measure its rates; retry after the next refit window"}
	}
	rates := api.PlanRates{Lambda: local.Arrival, Mu: local.Service, Xi: local.Failure, Eta: local.Repair}
	nodes, mus, xis, etas := 1, 1, 1, 1
	if s.clu != nil {
		for _, snap := range s.clu.GatherObs(ctx) {
			lam := snap[admission.MetricArrivalRate]
			if lam <= 0 {
				continue // peer has no fitted model yet
			}
			nodes++
			rates.Lambda += lam
			if mu := snap[admission.MetricServiceRate]; mu > 0 {
				rates.Mu += mu
				mus++
			}
			if xi := snap[admission.MetricFailureRate]; xi > 0 {
				rates.Xi += xi
				xis++
			}
			if eta := snap[admission.MetricRepairRate]; eta > 0 {
				rates.Eta += eta
				etas++
			}
		}
		rates.Mu /= float64(mus)
		rates.Xi /= float64(xis)
		rates.Eta /= float64(etas)
	}
	return rates, nodes, nil
}

// handleSimulate estimates the steady state by parallel independent
// replications with Student-t confidence intervals — the statistical
// validation companion to /v1/solve. With rel_precision set, replications
// stop as soon as the CI half-width on L is within ε of the mean (capped
// at replications); results are memoised by (fingerprint, seed, precision)
// and are bit-for-bit reproducible for a fixed request.
func (s *server) handleSimulate(w http.ResponseWriter, r *http.Request) {
	var req api.SimulateRequest
	if !s.decodeBody(w, r, &req) {
		return
	}
	// Option errors are client errors: rejecting them here gets them a 400
	// and keeps them out of the engine's simulation-failure counter.
	sys, opts, err := req.Resolve()
	if err != nil {
		s.writeError(w, r, err)
		return
	}
	if !sys.Stable() {
		ae := api.Unstable(sys)
		ae.Message += " — a simulation would never reach steady state"
		s.writeError(w, r, ae)
		return
	}
	if s.shouldRoute(r) {
		setTraceOwner(r.Context(), s.clu.Owner(sys.Fingerprint()))
		resp, served, err := s.clu.ForwardSimulate(r.Context(), sys.Fingerprint(), req)
		if served {
			if err != nil {
				s.writeError(w, r, err)
				return
			}
			writeJSON(w, http.StatusOK, resp)
			return
		}
	}
	res, err := s.eng.Simulate(r.Context(), sys, opts)
	if err != nil {
		s.writeError(w, r, err)
		return
	}
	writeJSON(w, http.StatusOK, api.SimulateResponse{
		Fingerprint:  sys.Fingerprint(),
		Replications: res.Replications,
		Converged:    res.Converged,
		Confidence:   res.Confidence,
		MeanQueue:    api.CI{Mean: res.MeanQueue, HalfWidth: res.MeanQueueHalfWidth},
		MeanResponse: api.CI{Mean: res.MeanResponse, HalfWidth: res.MeanResponseHalfWidth},
		Availability: api.CI{Mean: res.Availability, HalfWidth: res.AvailabilityHalfWidth},
		Completed:    res.Completed,
	})
}

// handleJobSubmit accepts an asynchronous job (POST /v1/jobs): the
// validated payload is queued and a 202 with the job's queued status
// returns immediately. A full queue answers 429 queue_full — the
// backpressure contract of the bounded scheduler. With -data-dir the
// submission is fsynced to the write-ahead log before the 202, so an
// accepted job survives a crash; with -peers, sweep jobs execute
// cluster-wide through the routing tier, sharded by environment
// fingerprint onto their ring-owner nodes.
func (s *server) handleJobSubmit(w http.ResponseWriter, r *http.Request) {
	var req api.JobRequest
	if !s.decodeBody(w, r, &req) {
		return
	}
	// The admission controller sheds before the scheduler's hard queue
	// bound is reached: when the self-model predicts the current backlog
	// cannot clear within the target wait, the 429 carries the predicted
	// drain time instead of letting the queue fill to its static limit
	// first. No model (first window, -admission off) admits everything —
	// the scheduler's own queue_full gate stays the backstop either way.
	if s.adm != nil {
		// The decision span lives here, not inside Decide: the controller's
		// decision path is allocation-gated by BenchmarkAdmissionDecision,
		// and a leaf span at the call site costs the request path nothing
		// extra while keeping the gate honest.
		backlog := s.sched.Backlog()
		asp := trace.StartLeaf(r.Context(), "mus.admission.decide")
		d := s.adm.Decide(backlog)
		asp.Set(trace.Int("backlog", int64(backlog)))
		asp.Set(trace.Bool("admit", d.Admit))
		if !d.Admit {
			secs := int(math.Ceil(d.RetryAfter.Seconds()))
			if secs < 1 {
				secs = 1
			}
			asp.Set(trace.Int("retry_after_s", int64(secs)))
			asp.FailMsg("shed: backlog exceeds the model-derived limit")
			asp.End()
			w.Header().Set("Retry-After", strconv.Itoa(secs))
			writeJSON(w, http.StatusTooManyRequests, api.ErrorEnvelope{
				Error: &api.Error{
					Code: api.CodeQueueFull,
					Message: fmt.Sprintf(
						"admission control: backlog exceeds the model-derived limit; predicted drain %ds", secs),
				},
				RequestID: requestID(r.Context()),
			})
			return
		}
		asp.End()
	}
	st, err := s.sched.Submit(r.Context(), req)
	if err != nil {
		s.writeError(w, r, err)
		return
	}
	setTraceJob(r.Context(), st.ID)
	writeJSON(w, http.StatusAccepted, st)
}

// handleJobList reports every retained job, newest first (GET /v1/jobs)
// — after a restart with -data-dir, the history replayed from the
// write-ahead log. Exempt from the drain gate like the other job reads.
func (s *server) handleJobList(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, api.JobListResponse{Jobs: s.sched.List()})
}

// handleJobStatus polls one job (GET /v1/jobs/{id}).
func (s *server) handleJobStatus(w http.ResponseWriter, r *http.Request) {
	setTraceJob(r.Context(), r.PathValue("id"))
	st, err := s.sched.Status(r.PathValue("id"))
	if err != nil {
		s.writeError(w, r, err)
		return
	}
	writeJSON(w, http.StatusOK, st)
}

// handleJobResult fetches a job's outcome (GET /v1/jobs/{id}/result). A
// non-terminal job answers 409 not_ready — except for sweep jobs asked
// with "Accept: application/x-ndjson", which answer 200 with the
// SweepPoint lines solved so far (possibly none), so a long sweep's
// partial results are readable mid-run.
func (s *server) handleJobResult(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	setTraceJob(r.Context(), id)
	if r.Header.Get("Accept") == api.ContentTypeNDJSON {
		pts, st, err := s.sched.PartialSweep(id)
		if err != nil {
			s.writeError(w, r, err)
			return
		}
		w.Header().Set("Content-Type", api.ContentTypeNDJSON)
		w.Header().Set(api.HeaderJobState, st.State)
		w.WriteHeader(http.StatusOK)
		enc := json.NewEncoder(w)
		for _, pt := range pts {
			if err := enc.Encode(pt); err != nil {
				return // client gone; nothing to recover
			}
		}
		return
	}
	res, err := s.sched.Result(id)
	if err != nil {
		s.writeError(w, r, err)
		return
	}
	writeJSON(w, http.StatusOK, res)
}

// handleJobCancel cancels one job (DELETE /v1/jobs/{id}) and returns its
// status. Cancelation is idempotent: a terminal job just echoes its final
// state; a running job reports canceled only once the engine has released
// its in-flight evaluations, so poll until terminal.
func (s *server) handleJobCancel(w http.ResponseWriter, r *http.Request) {
	setTraceJob(r.Context(), r.PathValue("id"))
	st, err := s.sched.Cancel(r.PathValue("id"))
	if err != nil {
		s.writeError(w, r, err)
		return
	}
	writeJSON(w, http.StatusOK, st)
}

// handleTraceList lists retained trace roots (GET /v1/traces), newest
// first. A clustered node merges every live peer's retained roots into
// the listing (peer gathers arrive forwarded, so they answer from their
// local index only and the fan-out stays one hop deep).
func (s *server) handleTraceList(w http.ResponseWriter, r *http.Request) {
	roots := s.tracer.Roots(0)
	list := make([]api.TraceSummary, 0, len(roots))
	for _, ri := range roots {
		list = append(list, api.TraceSummary{
			TraceID:    ri.TraceID.String(),
			Name:       ri.Name,
			Node:       ri.Node,
			Start:      ri.Start,
			DurationMS: float64(ri.Duration) / float64(time.Millisecond),
			Error:      ri.Err,
		})
	}
	if s.shouldRoute(r) {
		list = append(list, s.clu.GatherTraceList(r.Context())...)
	}
	sort.Slice(list, func(a, b int) bool {
		if !list[a].Start.Equal(list[b].Start) {
			return list[a].Start.After(list[b].Start)
		}
		return list[a].TraceID < list[b].TraceID
	})
	writeJSON(w, http.StatusOK, api.TraceListResponse{Traces: list})
}

// handleTrace assembles one trace's span tree (GET /v1/traces/{id}): the
// local ring's spans plus — on a clustered node serving the original
// request — every live peer's, sorted by start time, with the contributing
// nodes and the orphan count (spans whose parent is in no node's buffer).
func (s *server) handleTrace(w http.ResponseWriter, r *http.Request) {
	idStr := r.PathValue("id")
	id, ok := trace.ParseTraceID(idStr)
	if !ok {
		s.writeError(w, r, api.InvalidArgument("id", "trace ID %q: want 32 hex digits", idStr))
		return
	}
	var spans []api.TraceSpan
	for _, rec := range s.tracer.Collect(id) {
		spans = append(spans, traceSpanOf(rec))
	}
	if s.shouldRoute(r) {
		spans = append(spans, s.clu.GatherTraces(r.Context(), idStr)...)
	}
	if len(spans) == 0 {
		s.writeError(w, r, &api.Error{Code: api.CodeNotFound, Field: "id",
			Message: fmt.Sprintf("no buffered spans for trace %q (not retained, or evicted from every node's ring)", idStr)})
		return
	}
	sort.Slice(spans, func(a, b int) bool {
		if !spans[a].Start.Equal(spans[b].Start) {
			return spans[a].Start.Before(spans[b].Start)
		}
		return spans[a].SpanID < spans[b].SpanID
	})
	resp := api.TraceResponse{TraceID: idStr, Spans: spans, Orphans: orphanCount(spans)}
	seen := make(map[string]bool)
	for _, sp := range spans {
		if sp.Node != "" && !seen[sp.Node] {
			seen[sp.Node] = true
			resp.Nodes = append(resp.Nodes, sp.Node)
		}
	}
	sort.Strings(resp.Nodes)
	writeJSON(w, http.StatusOK, resp)
}

// traceSpanOf converts one buffered span record to its wire form.
func traceSpanOf(rec trace.SpanRecord) api.TraceSpan {
	sp := api.TraceSpan{
		TraceID:    rec.TraceID.String(),
		SpanID:     rec.SpanID.String(),
		Name:       rec.Name,
		Node:       rec.Node,
		Root:       rec.Root,
		Start:      rec.Start,
		DurationMS: float64(rec.Duration) / float64(time.Millisecond),
		Error:      rec.Err,
	}
	if !rec.Parent.IsZero() {
		sp.Parent = rec.Parent.String()
	}
	if rec.NAttrs > 0 {
		sp.Attrs = make(map[string]string, rec.NAttrs)
		for _, a := range rec.Attrs[:rec.NAttrs] {
			sp.Attrs[a.Key] = a.Value()
		}
	}
	return sp
}

// orphanCount counts spans whose parent is neither present in the
// assembled set nor excused by the span being a declared local root —
// zero means the tree is fully connected. Local roots are excused
// because their parent legitimately lives where no gather can reach: on
// a node killed mid-request, or in the pre-restart incarnation of a
// replayed job's submitter. A non-root span with a missing parent is a
// real hole (ring eviction, a dropped hop) and is what this counts.
func orphanCount(spans []api.TraceSpan) int {
	present := make(map[string]bool, len(spans))
	for _, sp := range spans {
		present[sp.SpanID] = true
	}
	n := 0
	for _, sp := range spans {
		if !sp.Root && sp.Parent != "" && !present[sp.Parent] {
			n++
		}
	}
	return n
}

// cacheStatsOf converts engine cache counters to their wire form.
func cacheStatsOf(c service.CacheStats) api.CacheStats {
	return api.CacheStats{
		Hits:      c.Hits,
		Misses:    c.Misses,
		Evictions: c.Evictions,
		Entries:   c.Entries,
		Capacity:  c.Capacity,
		HitRate:   c.HitRate(),
	}
}

func (s *server) handleStats(w http.ResponseWriter, r *http.Request) {
	st := s.eng.Stats()
	writeJSON(w, http.StatusOK, api.StatsResponse{
		UptimeSeconds:  time.Since(s.started).Seconds(),
		Requests:       s.requests.Load(),
		Workers:        st.Workers,
		Evaluations:    st.Evaluations,
		Solves:         st.Solves,
		SolverErrors:   st.Errors,
		SharedInFlight: st.SharedInFlight,
		SimRuns:        st.SimRuns,
		SimErrors:      st.SimErrors,
		BatchGroups:    st.BatchGroups,
		BatchFallbacks: st.BatchFallbacks,
		WarmedEntries:  st.WarmedEntries,
		Cache:          cacheStatsOf(st.Cache),
		SimCache:       cacheStatsOf(st.SimCache),
		Jobs:           s.sched.Stats(),
		Obs:            s.reg.Snapshot(),
	})
}

// handleHealthz answers load-balancer probes: 200 with the engine's
// worker and cache configuration means "route traffic here".
func (s *server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	st := s.eng.Stats()
	writeJSON(w, http.StatusOK, api.HealthResponse{
		Status:           "ok",
		Workers:          st.Workers,
		CacheCapacity:    st.Cache.Capacity,
		SimCacheCapacity: st.SimCache.Capacity,
		UptimeSeconds:    time.Since(s.started).Seconds(),
	})
}
