package main

import (
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/service"
)

// server wires the evaluation engine to the HTTP API. All state lives in
// the engine; the server itself only counts requests.
type server struct {
	eng      *service.Engine
	started  time.Time
	requests atomic.Uint64
}

func newServer(eng *service.Engine) *server {
	return &server{eng: eng, started: time.Now()}
}

// handler builds the /v1 route table.
func (s *server) handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/solve", s.count(s.handleSolve))
	mux.HandleFunc("POST /v1/sweep", s.count(s.handleSweep))
	mux.HandleFunc("POST /v1/optimize", s.count(s.handleOptimize))
	mux.HandleFunc("GET /v1/stats", s.count(s.handleStats))
	return mux
}

func (s *server) count(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		s.requests.Add(1)
		h(w, r)
	}
}

// systemJSON is the wire form of core.System. Omitted distribution fields
// default to the paper's fitted parameters (H2 operative periods with
// C² ≈ 4.6, exponential repairs with rate 25) and µ defaults to 1, so a
// minimal request is just {"servers": N, "lambda": λ}.
type systemJSON struct {
	Servers    int       `json:"servers"`
	Lambda     float64   `json:"lambda"`
	Mu         float64   `json:"mu,omitempty"`
	OpWeights  []float64 `json:"op_weights,omitempty"`
	OpRates    []float64 `json:"op_rates,omitempty"`
	RepWeights []float64 `json:"rep_weights,omitempty"`
	RepRates   []float64 `json:"rep_rates,omitempty"`
}

func (j systemJSON) toSystem() (core.System, error) {
	sys := core.System{
		Servers:     j.Servers,
		ArrivalRate: j.Lambda,
		ServiceRate: j.Mu,
	}
	if sys.ServiceRate == 0 {
		sys.ServiceRate = 1
	}
	var err error
	switch {
	case len(j.OpWeights) == 0 && len(j.OpRates) == 0:
		sys.Operative = dist.MustHyperExp([]float64{0.7246, 0.2754}, []float64{0.1663, 0.0091})
	default:
		sys.Operative, err = dist.NewHyperExp(j.OpWeights, j.OpRates)
		if err != nil {
			return core.System{}, fmt.Errorf("operative distribution: %w", err)
		}
	}
	switch {
	case len(j.RepWeights) == 0 && len(j.RepRates) == 0:
		sys.Repair = dist.Exp(25)
	default:
		sys.Repair, err = dist.NewHyperExp(j.RepWeights, j.RepRates)
		if err != nil {
			return core.System{}, fmt.Errorf("repair distribution: %w", err)
		}
	}
	return sys, nil
}

func parseMethod(name string) (core.Method, error) {
	switch name {
	case "", "spectral":
		return core.Spectral, nil
	case "approx", "approximation":
		return core.Approximation, nil
	case "mg", "matrix-geometric":
		return core.MatrixGeometric, nil
	default:
		return 0, fmt.Errorf("unknown method %q (want spectral, approx or mg)", name)
	}
}

// perfJSON is the wire form of core.Performance.
type perfJSON struct {
	MeanJobs     float64 `json:"mean_jobs"`
	MeanResponse float64 `json:"mean_response"`
	TailDecay    float64 `json:"tail_decay"`
	Load         float64 `json:"load"`
}

func toPerfJSON(p *core.Performance) perfJSON {
	return perfJSON{
		MeanJobs:     p.MeanJobs,
		MeanResponse: p.MeanResponse,
		TailDecay:    p.TailDecay,
		Load:         p.Load,
	}
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v) // response writer errors have no recovery path
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

func decodeBody(w http.ResponseWriter, r *http.Request, v any) bool {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("decode request: %w", err))
		return false
	}
	return true
}

type solveRequest struct {
	systemJSON
	Method      string  `json:"method,omitempty"`
	HoldingCost float64 `json:"holding_cost,omitempty"`
	ServerCost  float64 `json:"server_cost,omitempty"`
}

type solveResponse struct {
	Fingerprint  string   `json:"fingerprint"`
	Method       string   `json:"method"`
	Availability float64  `json:"availability"`
	Modes        int      `json:"modes"`
	Stable       bool     `json:"stable"`
	Perf         perfJSON `json:"perf"`
	Cost         *float64 `json:"cost,omitempty"`
}

func (s *server) handleSolve(w http.ResponseWriter, r *http.Request) {
	var req solveRequest
	if !decodeBody(w, r, &req) {
		return
	}
	sys, err := req.toSystem()
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	m, err := parseMethod(req.Method)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if err := sys.Validate(); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if !sys.Stable() {
		writeError(w, http.StatusUnprocessableEntity, fmt.Errorf(
			"unstable: load %.4g ≥ 1, need at least %d servers", sys.Load(), core.MinServersForStability(sys)))
		return
	}
	perf, err := s.eng.Evaluate(r.Context(), sys, m)
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	resp := solveResponse{
		Fingerprint:  sys.Fingerprint(),
		Method:       m.String(),
		Availability: sys.Availability(),
		Modes:        sys.Modes(),
		Stable:       true,
		Perf:         toPerfJSON(perf),
	}
	if req.HoldingCost > 0 || req.ServerCost > 0 {
		cm := core.CostModel{HoldingCost: req.HoldingCost, ServerCost: req.ServerCost}
		c := cm.Cost(perf.MeanJobs, sys.Servers)
		resp.Cost = &c
	}
	writeJSON(w, http.StatusOK, resp)
}

type sweepRequest struct {
	systemJSON
	Method string    `json:"method,omitempty"`
	Param  string    `json:"param"` // "lambda" or "servers"
	Values []float64 `json:"values"`
}

type sweepPoint struct {
	Value float64   `json:"value"`
	Perf  *perfJSON `json:"perf,omitempty"`
	Error string    `json:"error,omitempty"`
}

type sweepResponse struct {
	Method string       `json:"method"`
	Param  string       `json:"param"`
	Points []sweepPoint `json:"points"`
}

func (s *server) handleSweep(w http.ResponseWriter, r *http.Request) {
	var req sweepRequest
	if !decodeBody(w, r, &req) {
		return
	}
	base, err := req.toSystem()
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	m, err := parseMethod(req.Method)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if len(req.Values) == 0 {
		writeError(w, http.StatusBadRequest, fmt.Errorf("sweep needs at least one value"))
		return
	}
	const maxSweep = 10000
	if len(req.Values) > maxSweep {
		writeError(w, http.StatusBadRequest, fmt.Errorf("sweep of %d points exceeds the %d-point limit", len(req.Values), maxSweep))
		return
	}
	jobs := make([]service.Job, len(req.Values))
	for i, v := range req.Values {
		sys := base
		switch req.Param {
		case "lambda":
			sys.ArrivalRate = v
		case "servers":
			if v != math.Trunc(v) {
				writeError(w, http.StatusBadRequest, fmt.Errorf("servers sweep value %v is not an integer", v))
				return
			}
			sys.Servers = int(v)
		default:
			writeError(w, http.StatusBadRequest, fmt.Errorf("unknown sweep param %q (want lambda or servers)", req.Param))
			return
		}
		jobs[i] = service.Job{System: sys, Method: m}
	}
	results := s.eng.EvaluateBatch(r.Context(), jobs)
	resp := sweepResponse{Method: m.String(), Param: req.Param, Points: make([]sweepPoint, len(results))}
	for i, res := range results {
		pt := sweepPoint{Value: req.Values[i]}
		if res.Err != nil {
			pt.Error = res.Err.Error()
		} else {
			pj := toPerfJSON(res.Perf)
			pt.Perf = &pj
		}
		resp.Points[i] = pt
	}
	writeJSON(w, http.StatusOK, resp)
}

type optimizeRequest struct {
	systemJSON
	Method         string  `json:"method,omitempty"`
	HoldingCost    float64 `json:"holding_cost,omitempty"`
	ServerCost     float64 `json:"server_cost,omitempty"`
	MinServers     int     `json:"min_servers"`
	MaxServers     int     `json:"max_servers"`
	TargetResponse float64 `json:"target_response,omitempty"`
}

type optimizeResponse struct {
	Objective string   `json:"objective"`
	Servers   int      `json:"servers"`
	Cost      *float64 `json:"cost,omitempty"`
	Perf      perfJSON `json:"perf"`
}

// handleOptimize answers the paper's two provisioning questions: with a
// target_response it returns the smallest N meeting the SLA (Figure 9);
// otherwise it minimises C = c₁L + c₂N over [min_servers, max_servers]
// (Figure 5).
func (s *server) handleOptimize(w http.ResponseWriter, r *http.Request) {
	var req optimizeRequest
	if !decodeBody(w, r, &req) {
		return
	}
	base, err := req.toSystem()
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	m, err := parseMethod(req.Method)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if req.TargetResponse > 0 {
		minN := req.MinServers
		if minN == 0 {
			minN = 1
		}
		maxN := req.MaxServers
		if maxN == 0 {
			maxN = 64
		}
		pt, err := s.eng.MinServersForResponseTime(r.Context(), base, req.TargetResponse, minN, maxN, m)
		if err != nil {
			writeError(w, http.StatusUnprocessableEntity, err)
			return
		}
		writeJSON(w, http.StatusOK, optimizeResponse{
			Objective: fmt.Sprintf("min N in [%d, %d] with W ≤ %g", minN, maxN, req.TargetResponse),
			Servers:   pt.Servers,
			Perf:      toPerfJSON(pt.Perf),
		})
		return
	}
	if req.HoldingCost <= 0 && req.ServerCost <= 0 {
		writeError(w, http.StatusBadRequest, fmt.Errorf("optimize needs holding_cost/server_cost or target_response"))
		return
	}
	if req.MinServers < 1 || req.MaxServers < req.MinServers {
		writeError(w, http.StatusBadRequest, fmt.Errorf("invalid server range [%d, %d]", req.MinServers, req.MaxServers))
		return
	}
	cm := core.CostModel{HoldingCost: req.HoldingCost, ServerCost: req.ServerCost}
	best, err := s.eng.OptimizeServers(r.Context(), base, cm, req.MinServers, req.MaxServers, m)
	if err != nil {
		writeError(w, http.StatusUnprocessableEntity, err)
		return
	}
	writeJSON(w, http.StatusOK, optimizeResponse{
		Objective: fmt.Sprintf("min %g·L + %g·N over [%d, %d]", cm.HoldingCost, cm.ServerCost, req.MinServers, req.MaxServers),
		Servers:   best.Servers,
		Cost:      &best.Cost,
		Perf:      toPerfJSON(best.Perf),
	})
}

type statsResponse struct {
	UptimeSeconds  float64 `json:"uptime_seconds"`
	Requests       uint64  `json:"requests"`
	Workers        int     `json:"workers"`
	Solves         uint64  `json:"solves"`
	SolverErrors   uint64  `json:"solver_errors"`
	SharedInFlight uint64  `json:"shared_in_flight"`
	Cache          struct {
		Hits      uint64  `json:"hits"`
		Misses    uint64  `json:"misses"`
		Evictions uint64  `json:"evictions"`
		Entries   int     `json:"entries"`
		Capacity  int     `json:"capacity"`
		HitRate   float64 `json:"hit_rate"`
	} `json:"cache"`
}

func (s *server) handleStats(w http.ResponseWriter, r *http.Request) {
	st := s.eng.Stats()
	var resp statsResponse
	resp.UptimeSeconds = time.Since(s.started).Seconds()
	resp.Requests = s.requests.Load()
	resp.Workers = st.Workers
	resp.Solves = st.Solves
	resp.SolverErrors = st.Errors
	resp.SharedInFlight = st.SharedInFlight
	resp.Cache.Hits = st.Cache.Hits
	resp.Cache.Misses = st.Cache.Misses
	resp.Cache.Evictions = st.Cache.Evictions
	resp.Cache.Entries = st.Cache.Entries
	resp.Cache.Capacity = st.Cache.Capacity
	resp.Cache.HitRate = st.Cache.HitRate()
	writeJSON(w, http.StatusOK, resp)
}
