package main

import (
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/service"
)

// server wires the evaluation engine to the HTTP API. All state lives in
// the engine; the server itself only counts requests.
type server struct {
	eng      *service.Engine
	started  time.Time
	requests atomic.Uint64
}

func newServer(eng *service.Engine) *server {
	return &server{eng: eng, started: time.Now()}
}

// handler builds the /v1 route table.
func (s *server) handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/solve", s.count(s.handleSolve))
	mux.HandleFunc("POST /v1/sweep", s.count(s.handleSweep))
	mux.HandleFunc("POST /v1/optimize", s.count(s.handleOptimize))
	mux.HandleFunc("POST /v1/simulate", s.count(s.handleSimulate))
	mux.HandleFunc("GET /v1/stats", s.count(s.handleStats))
	return mux
}

func (s *server) count(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		s.requests.Add(1)
		h(w, r)
	}
}

// systemJSON is the wire form of core.System. Omitted distribution fields
// default to the paper's fitted parameters (H2 operative periods with
// C² ≈ 4.6, exponential repairs with rate 25) and µ defaults to 1, so a
// minimal request is just {"servers": N, "lambda": λ}.
type systemJSON struct {
	Servers    int       `json:"servers"`
	Lambda     float64   `json:"lambda"`
	Mu         float64   `json:"mu,omitempty"`
	OpWeights  []float64 `json:"op_weights,omitempty"`
	OpRates    []float64 `json:"op_rates,omitempty"`
	RepWeights []float64 `json:"rep_weights,omitempty"`
	RepRates   []float64 `json:"rep_rates,omitempty"`
}

func (j systemJSON) toSystem() (core.System, error) {
	sys := core.System{
		Servers:     j.Servers,
		ArrivalRate: j.Lambda,
		ServiceRate: j.Mu,
	}
	if sys.ServiceRate == 0 {
		sys.ServiceRate = 1
	}
	var err error
	switch {
	case len(j.OpWeights) == 0 && len(j.OpRates) == 0:
		sys.Operative = dist.MustHyperExp([]float64{0.7246, 0.2754}, []float64{0.1663, 0.0091})
	default:
		sys.Operative, err = dist.NewHyperExp(j.OpWeights, j.OpRates)
		if err != nil {
			return core.System{}, fmt.Errorf("operative distribution: %w", err)
		}
	}
	switch {
	case len(j.RepWeights) == 0 && len(j.RepRates) == 0:
		sys.Repair = dist.Exp(25)
	default:
		sys.Repair, err = dist.NewHyperExp(j.RepWeights, j.RepRates)
		if err != nil {
			return core.System{}, fmt.Errorf("repair distribution: %w", err)
		}
	}
	return sys, nil
}

func parseMethod(name string) (core.Method, error) {
	switch name {
	case "", "spectral":
		return core.Spectral, nil
	case "approx", "approximation":
		return core.Approximation, nil
	case "mg", "matrix-geometric":
		return core.MatrixGeometric, nil
	default:
		return 0, fmt.Errorf("unknown method %q (want spectral, approx or mg)", name)
	}
}

// perfJSON is the wire form of core.Performance.
type perfJSON struct {
	MeanJobs     float64 `json:"mean_jobs"`
	MeanResponse float64 `json:"mean_response"`
	TailDecay    float64 `json:"tail_decay"`
	Load         float64 `json:"load"`
}

func toPerfJSON(p *core.Performance) perfJSON {
	return perfJSON{
		MeanJobs:     p.MeanJobs,
		MeanResponse: p.MeanResponse,
		TailDecay:    p.TailDecay,
		Load:         p.Load,
	}
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v) // response writer errors have no recovery path
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

func decodeBody(w http.ResponseWriter, r *http.Request, v any) bool {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("decode request: %w", err))
		return false
	}
	return true
}

type solveRequest struct {
	systemJSON
	Method      string  `json:"method,omitempty"`
	HoldingCost float64 `json:"holding_cost,omitempty"`
	ServerCost  float64 `json:"server_cost,omitempty"`
}

type solveResponse struct {
	Fingerprint  string   `json:"fingerprint"`
	Method       string   `json:"method"`
	Availability float64  `json:"availability"`
	Modes        int      `json:"modes"`
	Stable       bool     `json:"stable"`
	Perf         perfJSON `json:"perf"`
	Cost         *float64 `json:"cost,omitempty"`
}

func (s *server) handleSolve(w http.ResponseWriter, r *http.Request) {
	var req solveRequest
	if !decodeBody(w, r, &req) {
		return
	}
	sys, err := req.toSystem()
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	m, err := parseMethod(req.Method)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if err := sys.Validate(); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if !sys.Stable() {
		writeError(w, http.StatusUnprocessableEntity, fmt.Errorf(
			"unstable: load %.4g ≥ 1, need at least %d servers", sys.Load(), core.MinServersForStability(sys)))
		return
	}
	perf, err := s.eng.Evaluate(r.Context(), sys, m)
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	resp := solveResponse{
		Fingerprint:  sys.Fingerprint(),
		Method:       m.String(),
		Availability: sys.Availability(),
		Modes:        sys.Modes(),
		Stable:       true,
		Perf:         toPerfJSON(perf),
	}
	if req.HoldingCost > 0 || req.ServerCost > 0 {
		cm := core.CostModel{HoldingCost: req.HoldingCost, ServerCost: req.ServerCost}
		c := cm.Cost(perf.MeanJobs, sys.Servers)
		resp.Cost = &c
	}
	writeJSON(w, http.StatusOK, resp)
}

type sweepRequest struct {
	systemJSON
	Method string    `json:"method,omitempty"`
	Param  string    `json:"param"` // "lambda" or "servers"
	Values []float64 `json:"values"`
}

type sweepPoint struct {
	Value float64   `json:"value"`
	Perf  *perfJSON `json:"perf,omitempty"`
	Error string    `json:"error,omitempty"`
}

type sweepResponse struct {
	Method string       `json:"method"`
	Param  string       `json:"param"`
	Points []sweepPoint `json:"points"`
}

func (s *server) handleSweep(w http.ResponseWriter, r *http.Request) {
	var req sweepRequest
	if !decodeBody(w, r, &req) {
		return
	}
	base, err := req.toSystem()
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	m, err := parseMethod(req.Method)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if len(req.Values) == 0 {
		writeError(w, http.StatusBadRequest, fmt.Errorf("sweep needs at least one value"))
		return
	}
	const maxSweep = 10000
	if len(req.Values) > maxSweep {
		writeError(w, http.StatusBadRequest, fmt.Errorf("sweep of %d points exceeds the %d-point limit", len(req.Values), maxSweep))
		return
	}
	jobs := make([]service.Job, len(req.Values))
	for i, v := range req.Values {
		sys := base
		switch req.Param {
		case "lambda":
			sys.ArrivalRate = v
		case "servers":
			if v != math.Trunc(v) {
				writeError(w, http.StatusBadRequest, fmt.Errorf("servers sweep value %v is not an integer", v))
				return
			}
			sys.Servers = int(v)
		default:
			writeError(w, http.StatusBadRequest, fmt.Errorf("unknown sweep param %q (want lambda or servers)", req.Param))
			return
		}
		jobs[i] = service.Job{System: sys, Method: m}
	}
	results := s.eng.EvaluateBatch(r.Context(), jobs)
	resp := sweepResponse{Method: m.String(), Param: req.Param, Points: make([]sweepPoint, len(results))}
	for i, res := range results {
		pt := sweepPoint{Value: req.Values[i]}
		if res.Err != nil {
			pt.Error = res.Err.Error()
		} else {
			pj := toPerfJSON(res.Perf)
			pt.Perf = &pj
		}
		resp.Points[i] = pt
	}
	writeJSON(w, http.StatusOK, resp)
}

type optimizeRequest struct {
	systemJSON
	Method         string  `json:"method,omitempty"`
	HoldingCost    float64 `json:"holding_cost,omitempty"`
	ServerCost     float64 `json:"server_cost,omitempty"`
	MinServers     int     `json:"min_servers"`
	MaxServers     int     `json:"max_servers"`
	TargetResponse float64 `json:"target_response,omitempty"`
}

type optimizeResponse struct {
	Objective string   `json:"objective"`
	Servers   int      `json:"servers"`
	Cost      *float64 `json:"cost,omitempty"`
	Perf      perfJSON `json:"perf"`
}

// handleOptimize answers the paper's two provisioning questions: with a
// target_response it returns the smallest N meeting the SLA (Figure 9);
// otherwise it minimises C = c₁L + c₂N over [min_servers, max_servers]
// (Figure 5).
func (s *server) handleOptimize(w http.ResponseWriter, r *http.Request) {
	var req optimizeRequest
	if !decodeBody(w, r, &req) {
		return
	}
	base, err := req.toSystem()
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	m, err := parseMethod(req.Method)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if req.TargetResponse > 0 {
		minN := req.MinServers
		if minN == 0 {
			minN = 1
		}
		maxN := req.MaxServers
		if maxN == 0 {
			maxN = 64
		}
		pt, err := s.eng.MinServersForResponseTime(r.Context(), base, req.TargetResponse, minN, maxN, m)
		if err != nil {
			writeError(w, http.StatusUnprocessableEntity, err)
			return
		}
		writeJSON(w, http.StatusOK, optimizeResponse{
			Objective: fmt.Sprintf("min N in [%d, %d] with W ≤ %g", minN, maxN, req.TargetResponse),
			Servers:   pt.Servers,
			Perf:      toPerfJSON(pt.Perf),
		})
		return
	}
	if req.HoldingCost <= 0 && req.ServerCost <= 0 {
		writeError(w, http.StatusBadRequest, fmt.Errorf("optimize needs holding_cost/server_cost or target_response"))
		return
	}
	if req.MinServers < 1 || req.MaxServers < req.MinServers {
		writeError(w, http.StatusBadRequest, fmt.Errorf("invalid server range [%d, %d]", req.MinServers, req.MaxServers))
		return
	}
	cm := core.CostModel{HoldingCost: req.HoldingCost, ServerCost: req.ServerCost}
	best, err := s.eng.OptimizeServers(r.Context(), base, cm, req.MinServers, req.MaxServers, m)
	if err != nil {
		writeError(w, http.StatusUnprocessableEntity, err)
		return
	}
	writeJSON(w, http.StatusOK, optimizeResponse{
		Objective: fmt.Sprintf("min %g·L + %g·N over [%d, %d]", cm.HoldingCost, cm.ServerCost, req.MinServers, req.MaxServers),
		Servers:   best.Servers,
		Cost:      &best.Cost,
		Perf:      toPerfJSON(best.Perf),
	})
}

type simulateRequest struct {
	systemJSON
	Seed            int64   `json:"seed,omitempty"`
	Warmup          float64 `json:"warmup,omitempty"`
	Horizon         float64 `json:"horizon,omitempty"`
	Replications    int     `json:"replications,omitempty"`
	MinReplications int     `json:"min_replications,omitempty"`
	RelPrecision    float64 `json:"rel_precision,omitempty"`
	Confidence      float64 `json:"confidence,omitempty"`
}

// ciJSON is the wire form of one point estimate with its confidence
// half-width: the true value lies in [mean−half_width, mean+half_width]
// with the response's confidence level.
type ciJSON struct {
	Mean      float64 `json:"mean"`
	HalfWidth float64 `json:"half_width"`
}

type simulateResponse struct {
	Fingerprint  string  `json:"fingerprint"`
	Replications int     `json:"replications"`
	Converged    bool    `json:"converged"`
	Confidence   float64 `json:"confidence"`
	MeanQueue    ciJSON  `json:"mean_queue"`
	MeanResponse ciJSON  `json:"mean_response"`
	Availability ciJSON  `json:"availability"`
	Completed    int64   `json:"completed"`
}

// handleSimulate estimates the steady state by parallel independent
// replications with Student-t confidence intervals — the statistical
// validation companion to /v1/solve. With rel_precision set, replications
// stop as soon as the CI half-width on L is within ε of the mean (capped
// at replications); results are memoised by (fingerprint, seed, precision)
// and are bit-for-bit reproducible for a fixed request.
func (s *server) handleSimulate(w http.ResponseWriter, r *http.Request) {
	var req simulateRequest
	if !decodeBody(w, r, &req) {
		return
	}
	sys, err := req.toSystem()
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if err := sys.Validate(); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if !sys.Stable() {
		writeError(w, http.StatusUnprocessableEntity, fmt.Errorf(
			"unstable: load %.4g ≥ 1, need at least %d servers — a simulation would never reach steady state",
			sys.Load(), core.MinServersForStability(sys)))
		return
	}
	// Option errors are client errors: reject them here so they get a 400
	// and never inflate the engine's simulation-failure counter.
	switch {
	case req.Confidence != 0 && !(req.Confidence > 0 && req.Confidence < 1):
		writeError(w, http.StatusBadRequest, fmt.Errorf("confidence %v outside (0, 1)", req.Confidence))
		return
	case req.RelPrecision < 0:
		writeError(w, http.StatusBadRequest, fmt.Errorf("rel_precision %v must be ≥ 0", req.RelPrecision))
		return
	case req.Replications < 0 || req.MinReplications < 0:
		writeError(w, http.StatusBadRequest, fmt.Errorf("replication counts must be ≥ 0"))
		return
	case req.Warmup < 0 || req.Horizon < 0:
		writeError(w, http.StatusBadRequest, fmt.Errorf("warmup and horizon must be ≥ 0"))
		return
	}
	opts := core.SimOptions{
		Seed:            req.Seed,
		Warmup:          req.Warmup,
		Horizon:         req.Horizon,
		Replications:    req.Replications,
		MinReplications: req.MinReplications,
		RelPrecision:    req.RelPrecision,
		Confidence:      req.Confidence,
	}
	if opts.Replications == 0 {
		opts.Replications = 8 // CIs by default: one batch-means run cannot bracket W
	}
	res, err := s.eng.Simulate(r.Context(), sys, opts)
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	writeJSON(w, http.StatusOK, simulateResponse{
		Fingerprint:  sys.Fingerprint(),
		Replications: res.Replications,
		Converged:    res.Converged,
		Confidence:   res.Confidence,
		MeanQueue:    ciJSON{res.MeanQueue, res.MeanQueueHalfWidth},
		MeanResponse: ciJSON{res.MeanResponse, res.MeanResponseHalfWidth},
		Availability: ciJSON{res.Availability, res.AvailabilityHalfWidth},
		Completed:    res.Completed,
	})
}

type statsResponse struct {
	UptimeSeconds  float64   `json:"uptime_seconds"`
	Requests       uint64    `json:"requests"`
	Workers        int       `json:"workers"`
	Solves         uint64    `json:"solves"`
	SolverErrors   uint64    `json:"solver_errors"`
	SharedInFlight uint64    `json:"shared_in_flight"`
	SimRuns        uint64    `json:"sim_runs"`
	SimErrors      uint64    `json:"sim_errors"`
	Cache          cacheJSON `json:"cache"`
	SimCache       cacheJSON `json:"sim_cache"`
}

type cacheJSON struct {
	Hits      uint64  `json:"hits"`
	Misses    uint64  `json:"misses"`
	Evictions uint64  `json:"evictions"`
	Entries   int     `json:"entries"`
	Capacity  int     `json:"capacity"`
	HitRate   float64 `json:"hit_rate"`
}

func toCacheJSON(c service.CacheStats) cacheJSON {
	return cacheJSON{
		Hits:      c.Hits,
		Misses:    c.Misses,
		Evictions: c.Evictions,
		Entries:   c.Entries,
		Capacity:  c.Capacity,
		HitRate:   c.HitRate(),
	}
}

func (s *server) handleStats(w http.ResponseWriter, r *http.Request) {
	st := s.eng.Stats()
	writeJSON(w, http.StatusOK, statsResponse{
		UptimeSeconds:  time.Since(s.started).Seconds(),
		Requests:       s.requests.Load(),
		Workers:        st.Workers,
		Solves:         st.Solves,
		SolverErrors:   st.Errors,
		SharedInFlight: st.SharedInFlight,
		SimRuns:        st.SimRuns,
		SimErrors:      st.SimErrors,
		Cache:          toCacheJSON(st.Cache),
		SimCache:       toCacheJSON(st.SimCache),
	})
}
