package main

import (
	"context"
	"math"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"repro/api"
	"repro/client"
	"repro/internal/admission"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/service"
	"repro/internal/service/jobs"
)

// admissionServer builds a standalone mus-serve with the admission
// controller attached but never started — tests drive Refit directly (or
// not at all, for the no-model error contract).
func admissionServer(t *testing.T) (*httptest.Server, *server, *admission.Controller) {
	t.Helper()
	eng := service.NewEngine(service.Config{})
	sched := jobs.New(jobs.Config{Engine: eng})
	t.Cleanup(sched.Close)
	srv := newServerJobs(eng, sched)
	ctl := srv.attachAdmission(admission.Config{Interval: -1})
	ts := httptest.NewServer(srv.handler())
	t.Cleanup(ts.Close)
	return ts, srv, ctl
}

// fitController swaps a deterministically fitted controller into srv: two
// manual refits 10 s apart see 5 arrivals and 10 completions over one busy
// worker, so the published model has λ̂ = 0.5 and µ̂ = 1.0 exactly, giving
// Capacity ≈ servers·µ̂ jobs/s (availability ≈ 1 with the default ξ̂, η̂)
// and Limit ≈ Capacity·targetWait. The backlog observed at fit time is 10.
func fitController(t *testing.T, srv *server, servers int, targetWait time.Duration) *admission.Controller {
	t.Helper()
	now := time.Unix(1_700_000_000, 0)
	flow := admission.Flow{Busy: 1, Servers: servers}
	ctl := admission.New(admission.Config{
		Sample:     func() admission.Flow { return flow },
		Evaluate:   srv.eng.Evaluate,
		Interval:   -1,
		TargetWait: targetWait,
		Now:        func() time.Time { return now },
	})
	if err := ctl.Refit(context.Background()); err != nil {
		t.Fatal(err)
	}
	now = now.Add(10 * time.Second)
	flow = admission.Flow{Arrivals: 5, Completions: 10, Busy: 1, Servers: servers, Backlog: 10}
	if err := ctl.Refit(context.Background()); err != nil {
		t.Fatal(err)
	}
	if ctl.Snapshot() == nil {
		t.Fatal("no model published after two refits")
	}
	srv.adm = ctl
	return ctl
}

// TestPlanFigure5Agreement is the planning acceptance criterion: /v1/plan
// fed the paper's §5 parameters (c₁ = 4, c₂ = 1, η = 25, fitted Sun
// operative periods) answers with exactly the cost-optimal N that
// core.OptimizeServers finds offline — which is the paper's own Figure 5
// optimum for each arrival rate.
func TestPlanFigure5Agreement(t *testing.T) {
	ts := testServer(t)
	c := client.New(ts.URL)
	ctx := context.Background()
	cm := core.CostModel{HoldingCost: 4, ServerCost: 1}
	for _, tc := range []struct {
		lambda float64
		paperN int
	}{
		{7.0, 11},
		{8.0, 12},
		{8.5, 13},
	} {
		resp, err := c.Plan(ctx, api.PlanRequest{
			System:      api.System{Lambda: tc.lambda},
			HoldingCost: 4, ServerCost: 1,
			MinServers: 9, MaxServers: 17,
		})
		if err != nil {
			t.Fatalf("λ=%v: %v", tc.lambda, err)
		}
		base, err := (api.System{Servers: 1, Lambda: tc.lambda}).ToSystem()
		if err != nil {
			t.Fatal(err)
		}
		best, err := core.OptimizeServers(base, cm, 9, 17, core.Spectral)
		if err != nil {
			t.Fatalf("λ=%v offline: %v", tc.lambda, err)
		}
		if resp.Servers != best.Servers || resp.Servers != tc.paperN {
			t.Errorf("λ=%v: plan N = %d, offline N = %d, Figure 5 N = %d",
				tc.lambda, resp.Servers, best.Servers, tc.paperN)
		}
		if resp.Cost == nil || math.Abs(*resp.Cost-best.Cost) > 1e-9 {
			t.Errorf("λ=%v: plan cost %v, offline cost %v", tc.lambda, resp.Cost, best.Cost)
		}
		if resp.Source != api.PlanSourceRequest {
			t.Errorf("λ=%v: source %q, want %q", tc.lambda, resp.Source, api.PlanSourceRequest)
		}
		if resp.Rates.Lambda != tc.lambda {
			t.Errorf("λ=%v: echoed λ = %v", tc.lambda, resp.Rates.Lambda)
		}
		if resp.MinStable < 1 || resp.MinStable > resp.Servers {
			t.Errorf("λ=%v: min_stable %d outside [1, %d]", tc.lambda, resp.MinStable, resp.Servers)
		}
	}
}

// TestPlanTargetResponseAgreement pins the SLA mode against the Figure 9
// scenario (λ = 7.5, η = 25, W ≤ 1.5): the plan must return the same
// smallest satisfying N as core.MinServersForResponseTime offline — the
// paper reads 9 off the figure.
func TestPlanTargetResponseAgreement(t *testing.T) {
	ts := testServer(t)
	c := client.New(ts.URL)
	resp, err := c.Plan(context.Background(), api.PlanRequest{
		System:         api.System{Lambda: 7.5},
		TargetResponse: 1.5,
	})
	if err != nil {
		t.Fatal(err)
	}
	base, err := (api.System{Servers: 1, Lambda: 7.5}).ToSystem()
	if err != nil {
		t.Fatal(err)
	}
	off, err := core.MinServersForResponseTime(base, 1.5, 64, core.Spectral)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Servers != off.Servers || resp.Servers != 9 {
		t.Errorf("plan N = %d, offline N = %d, Figure 9 reads 9", resp.Servers, off.Servers)
	}
	if resp.Perf.MeanResponse > 1.5 {
		t.Errorf("planned W = %v exceeds the 1.5 target", resp.Perf.MeanResponse)
	}
}

// TestPlanErrorContract pins the endpoint's failure taxonomy over raw HTTP:
// malformed objectives are 400 invalid_argument, measured mode without the
// admission controller is 400, and a well-formed plan whose constraints
// cannot be met inside the range is 422 unsatisfiable.
func TestPlanErrorContract(t *testing.T) {
	ts := testServer(t)
	cases := []struct {
		name   string
		body   string
		status int
		code   api.Code
	}{
		{"no objective", `{"lambda": 2}`, http.StatusBadRequest, api.CodeInvalidArgument},
		{"inverted range", `{"lambda": 2, "holding_cost": 4, "server_cost": 1, "min_servers": 5, "max_servers": 2}`,
			http.StatusBadRequest, api.CodeInvalidArgument},
		{"negative target", `{"lambda": 2, "target_response": -1}`, http.StatusBadRequest, api.CodeInvalidArgument},
		{"measured without admission", `{"measured": true, "holding_cost": 4, "server_cost": 1}`,
			http.StatusBadRequest, api.CodeInvalidArgument},
		{"no stable N in range", `{"lambda": 100, "holding_cost": 4, "server_cost": 1, "max_servers": 2}`,
			http.StatusUnprocessableEntity, api.CodeUnsatisfiable},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			status, env := postForError(t, ts.URL+api.PathPlan, tc.body)
			if status != tc.status {
				t.Errorf("status = %d, want %d", status, tc.status)
			}
			if env.Error == nil || env.Error.Code != tc.code {
				t.Errorf("envelope %+v, want code %q", env, tc.code)
			}
		})
	}
}

// TestPlanMeasuredNoModel: measured mode on a node whose controller has
// not fitted yet (first window after boot) is a 422 — the tier cannot
// answer about itself before it has measured itself.
func TestPlanMeasuredNoModel(t *testing.T) {
	ts, _, _ := admissionServer(t)
	c := client.New(ts.URL)
	_, err := c.Plan(context.Background(), api.PlanRequest{Measured: true, HoldingCost: 4, ServerCost: 1})
	if errCode(t, err) != api.CodeUnsatisfiable {
		t.Fatalf("measured plan before first fit: %v, want unsatisfiable", err)
	}
}

// TestPlanMeasuredStandalone closes the self-modeling loop on one node:
// the plan's rates are the controller's fitted λ̂, µ̂ — not anything from
// the request body — and the recommendation equals the offline optimum
// for exactly that fitted system.
func TestPlanMeasuredStandalone(t *testing.T) {
	ts, srv, _ := admissionServer(t)
	fitController(t, srv, 2, 0)
	c := client.New(ts.URL)
	resp, err := c.Plan(context.Background(), api.PlanRequest{
		Measured:    true,
		HoldingCost: 4, ServerCost: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Source != api.PlanSourceMeasured || resp.Nodes != 1 {
		t.Errorf("source %q over %d nodes, want measured over 1", resp.Source, resp.Nodes)
	}
	if math.Abs(resp.Rates.Lambda-0.5) > 1e-9 || math.Abs(resp.Rates.Mu-1.0) > 1e-9 {
		t.Errorf("fitted rates λ̂=%v µ̂=%v, want 0.5 and 1.0", resp.Rates.Lambda, resp.Rates.Mu)
	}
	base := measuredBase(resp.Rates)
	best, err := core.OptimizeServers(base, core.CostModel{HoldingCost: 4, ServerCost: 1}, 1, 64, core.Spectral)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Servers != best.Servers {
		t.Errorf("plan N = %d, offline N = %d for the same fitted system", resp.Servers, best.Servers)
	}
	if resp.Cost == nil || math.Abs(*resp.Cost-best.Cost) > 1e-9 {
		t.Errorf("plan cost %v, offline cost %v", resp.Cost, best.Cost)
	}
}

// measuredBase rebuilds the single-server base system a measured plan is
// solved over, for offline comparison.
func measuredBase(r api.PlanRates) core.System {
	return core.System{
		Servers:     1,
		ArrivalRate: r.Lambda,
		ServiceRate: r.Mu,
		Operative:   dist.Exp(r.Xi),
		Repair:      dist.Exp(r.Eta),
	}
}

// TestPlanMeasuredClusterAggregation is the cluster-mode acceptance
// criterion: a measured plan on a clustered node joins its own fitted
// rates with every peer's published mus_admission_* gauges — arrival
// rates sum (each node sheds its own slice of the offered load),
// per-server rates average — before the solve.
func TestPlanMeasuredClusterAggregation(t *testing.T) {
	// The peer is a canned /v1/cluster endpoint publishing a fitted model
	// of λ̂=1.5 over µ̂=3 servers-per-second workers.
	peer := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != api.PathCluster {
			http.NotFound(w, r)
			return
		}
		writeJSON(w, http.StatusOK, api.ClusterResponse{
			Enabled: true,
			Obs: map[string]float64{
				admission.MetricArrivalRate: 1.5,
				admission.MetricServiceRate: 3.0,
				admission.MetricFailureRate: 3e-6,
				admission.MetricRepairRate:  1.0,
			},
		})
	}))
	t.Cleanup(peer.Close)

	sh := &swapHandler{}
	ts := httptest.NewServer(sh)
	t.Cleanup(ts.Close)
	clu, err := cluster.New(cluster.Config{
		SelfID: ts.URL,
		Nodes: []cluster.NodeConfig{
			{ID: ts.URL, URL: ts.URL},
			{ID: peer.URL, URL: peer.URL},
		},
		ProbeInterval: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(clu.Close)
	eng := service.NewEngine(service.Config{})
	sched := jobs.New(jobs.Config{Engine: eng})
	t.Cleanup(sched.Close)
	srv := newServerCluster(eng, sched, clu)
	fitController(t, srv, 2, 0) // local fit: λ̂ = 0.5, µ̂ = 1, ξ̂ = 1e-6, η̂ = 1
	sh.h.Store(srv.handler())

	resp, err := client.New(ts.URL).Plan(context.Background(), api.PlanRequest{
		Measured:    true,
		HoldingCost: 4, ServerCost: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Nodes != 2 {
		t.Fatalf("aggregated %d nodes, want 2", resp.Nodes)
	}
	want := api.PlanRates{
		Lambda: 0.5 + 1.5,         // sums
		Mu:     (1.0 + 3.0) / 2,   // averages
		Xi:     (1e-6 + 3e-6) / 2, // averages
		Eta:    (1.0 + 1.0) / 2,   // averages
	}
	if math.Abs(resp.Rates.Lambda-want.Lambda) > 1e-9 ||
		math.Abs(resp.Rates.Mu-want.Mu) > 1e-9 ||
		math.Abs(resp.Rates.Xi-want.Xi) > 1e-12 ||
		math.Abs(resp.Rates.Eta-want.Eta) > 1e-9 {
		t.Errorf("aggregated rates %+v, want %+v", resp.Rates, want)
	}
	best, err := core.OptimizeServers(measuredBase(resp.Rates),
		core.CostModel{HoldingCost: 4, ServerCost: 1}, 1, 64, core.Spectral)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Servers != best.Servers {
		t.Errorf("cluster plan N = %d, offline N = %d", resp.Servers, best.Servers)
	}
}
