package main

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"repro/api"
	"repro/client"
	"repro/internal/core"
	"repro/internal/service"
	"repro/internal/service/jobs"
)

// gatedEngine implements jobs.Engine with a token gate per sweep point,
// so end-to-end tests freeze a job mid-run deterministically: the HTTP
// layer, scheduler and SDK are all real, only solver latency is
// synthetic.
type gatedEngine struct {
	gate chan struct{}
}

func (g *gatedEngine) EvaluateStream(ctx context.Context, work []service.Job, emit func(service.Result) error) error {
	for i := range work {
		select {
		case <-g.gate:
		case <-ctx.Done():
			return ctx.Err()
		}
		perf := &core.Performance{MeanJobs: float64(i), MeanResponse: 1, TailDecay: 0.5, Load: 0.5}
		if err := emit(service.Result{Index: i, Job: work[i], Perf: perf}); err != nil {
			return err
		}
	}
	return nil
}

func (g *gatedEngine) Simulate(ctx context.Context, sys core.System, opts core.SimOptions) (core.SimResult, error) {
	select {
	case <-g.gate:
		return core.SimResult{Replications: 2, Confidence: 0.95, MeanQueue: 1}, nil
	case <-ctx.Done():
		return core.SimResult{}, ctx.Err()
	}
}

func (g *gatedEngine) OptimizeServers(ctx context.Context, base core.System, cm core.CostModel, minN, maxN int, m core.Method) (core.ServerSweepPoint, error) {
	return core.ServerSweepPoint{Servers: minN, Perf: &core.Performance{MeanJobs: 1}}, nil
}

func (g *gatedEngine) MinServersForResponseTime(ctx context.Context, base core.System, target float64, minN, maxN int, m core.Method) (core.ServerSweepPoint, error) {
	return core.ServerSweepPoint{Servers: minN, Perf: &core.Performance{MeanJobs: 1}}, nil
}

// gatedServer builds a full mus-serve over a gated fake engine for the
// job endpoints (synchronous endpoints keep the real engine).
func gatedServer(t *testing.T, cfg jobs.Config) (*httptest.Server, *gatedEngine) {
	t.Helper()
	fake := &gatedEngine{gate: make(chan struct{})}
	cfg.Engine = fake
	sched := jobs.New(cfg)
	t.Cleanup(sched.Close)
	ts := httptest.NewServer(newServerJobs(service.NewEngine(service.Config{Workers: 2}), sched).handler())
	t.Cleanup(ts.Close)
	return ts, fake
}

func waitForState(t *testing.T, c *client.Client, id, state string) api.JobStatus {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		st, err := c.JobStatus(context.Background(), id)
		if err != nil {
			t.Fatalf("polling job %s: %v", id, err)
		}
		if st.State == state {
			return *st
		}
		if st.Terminal() || time.Now().After(deadline) {
			t.Fatalf("job %s reached %s while waiting for %s", id, st.State, state)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestJobEndToEndAcceptance is the acceptance scenario of the job
// subsystem, all through the SDK against real handlers: a large sweep job
// is observed running with advancing progress, its partial NDJSON results
// are fetched mid-run, and a second job is canceled mid-evaluation with
// the engine's in-flight work released.
func TestJobEndToEndAcceptance(t *testing.T) {
	ts, fake := gatedServer(t, jobs.Config{Workers: 2, QueueDepth: 8})
	c := client.New(ts.URL)
	ctx := context.Background()

	values := make([]float64, 40)
	for i := range values {
		values[i] = float64(i + 1)
	}
	sweep := api.SweepRequest{System: api.System{Servers: 4}, Param: api.ParamLambda, Values: values}
	st, err := c.SubmitJob(ctx, api.NewSweepJob(sweep))
	if err != nil {
		t.Fatal(err)
	}
	if st.State != api.JobStateQueued && st.State != api.JobStateRunning {
		t.Fatalf("fresh job state %s", st.State)
	}

	// Let three points through and watch progress advance mid-run.
	for i := 0; i < 3; i++ {
		fake.gate <- struct{}{}
	}
	deadline := time.Now().Add(10 * time.Second)
	var mid api.JobStatus
	for {
		got, err := c.JobStatus(ctx, st.ID)
		if err != nil {
			t.Fatal(err)
		}
		if got.State == api.JobStateRunning && got.Progress.Completed == 3 {
			mid = *got
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("progress stuck at %+v", got.Progress)
		}
		time.Sleep(time.Millisecond)
	}
	if mid.Progress.Total != 40 {
		t.Errorf("total %d, want 40", mid.Progress.Total)
	}

	// Partial NDJSON mid-run: exactly the solved prefix, in grid order.
	var partial []api.SweepPoint
	state, err := c.JobSweepPartial(ctx, st.ID, func(pt api.SweepPoint) error {
		partial = append(partial, pt)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if state != api.JobStateRunning {
		t.Errorf("partial snapshot state %s, want running", state)
	}
	if len(partial) != 3 {
		t.Fatalf("partial has %d points, want 3", len(partial))
	}
	for i, pt := range partial {
		if pt.Index != i || pt.Value != values[i] || pt.Perf == nil {
			t.Errorf("partial[%d] = %+v", i, pt)
		}
	}
	// The buffered result is not ready yet — 409 not_ready.
	if _, err := c.JobResult(ctx, st.ID); errCode(t, err) != api.CodeNotReady {
		t.Errorf("mid-run result: %v", err)
	}

	// Second job: cancel it mid-evaluation; the canceled state must be
	// observed and the engine's in-flight evaluation released.
	second, err := c.SubmitJob(ctx, api.NewSweepJob(sweep))
	if err != nil {
		t.Fatal(err)
	}
	waitForState(t, c, second.ID, api.JobStateRunning)
	if _, err := c.CancelJob(ctx, second.ID); err != nil {
		t.Fatal(err)
	}
	if fin, err := c.WaitJob(ctx, second.ID, nil); err != nil || fin.State != api.JobStateCanceled {
		t.Fatalf("second job after cancel: %+v, %v", fin, err)
	}

	// Release the rest; the first job completes with the full grid.
	go func() {
		for i := 3; i < len(values); i++ {
			fake.gate <- struct{}{}
		}
	}()
	fin, err := c.WaitJob(ctx, st.ID, nil)
	if err != nil {
		t.Fatal(err)
	}
	if fin.State != api.JobStateDone || fin.Progress.Completed != 40 {
		t.Fatalf("final status %+v", fin)
	}
	res, err := c.JobResult(ctx, st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if res.Sweep == nil || len(res.Sweep.Points) != 40 {
		t.Fatalf("final result %+v", res)
	}

	// Stats reflect the two jobs' final states.
	stats, err := c.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Jobs.Done != 1 || stats.Jobs.Canceled != 1 || stats.Jobs.Submitted != 2 {
		t.Errorf("job stats %+v", stats.Jobs)
	}
	if stats.Jobs.QueueCapacity != 8 {
		t.Errorf("queue capacity %d, want 8", stats.Jobs.QueueCapacity)
	}
}

// TestJobSweepAgainstRealEngine runs a sweep job on the real engine and
// demands the result be identical to the synchronous /v1/sweep answer.
func TestJobSweepAgainstRealEngine(t *testing.T) {
	eng := service.NewEngine(service.Config{})
	sched := jobs.New(jobs.Config{Engine: eng})
	t.Cleanup(sched.Close)
	ts := httptest.NewServer(newServerJobs(eng, sched).handler())
	t.Cleanup(ts.Close)
	c := client.New(ts.URL)
	ctx := context.Background()

	req := api.SweepRequest{System: api.System{Servers: 10}, Param: api.ParamLambda, Values: []float64{2, 4, 6, 8}}
	sync, err := c.Sweep(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	st, err := c.SubmitJob(ctx, api.NewSweepJob(req))
	if err != nil {
		t.Fatal(err)
	}
	if fin, err := c.WaitJob(ctx, st.ID, nil); err != nil || fin.State != api.JobStateDone {
		t.Fatalf("job: %+v, %v", fin, err)
	}
	res, err := c.JobResult(ctx, st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if res.Sweep == nil || len(res.Sweep.Points) != len(sync.Points) {
		t.Fatalf("job sweep %+v vs sync %+v", res.Sweep, sync)
	}
	for i, pt := range res.Sweep.Points {
		want := sync.Points[i]
		if pt.Index != want.Index || pt.Value != want.Value || pt.Error != want.Error {
			t.Errorf("point %d: job %+v vs sync %+v", i, pt, want)
			continue
		}
		if (pt.Perf == nil) != (want.Perf == nil) {
			t.Errorf("point %d: perf presence differs", i)
			continue
		}
		if pt.Perf != nil && *pt.Perf != *want.Perf {
			t.Errorf("point %d: job %+v vs sync %+v", i, *pt.Perf, *want.Perf)
		}
	}
}

// TestJobQueueFullOverHTTP pins the backpressure contract on the wire: a
// full queue answers 429 with code queue_full.
func TestJobQueueFullOverHTTP(t *testing.T) {
	ts, _ := gatedServer(t, jobs.Config{Workers: 1, QueueDepth: 1})
	c := client.New(ts.URL)
	ctx := context.Background()
	sweep := api.NewSweepJob(api.SweepRequest{System: api.System{Servers: 4}, Param: api.ParamLambda, Values: []float64{1}})
	first, err := c.SubmitJob(ctx, sweep)
	if err != nil {
		t.Fatal(err)
	}
	waitForState(t, c, first.ID, api.JobStateRunning)
	if _, err := c.SubmitJob(ctx, sweep); err != nil {
		t.Fatal(err)
	}
	_, err = c.SubmitJob(ctx, sweep)
	if errCode(t, err) != api.CodeQueueFull {
		t.Fatalf("third submission: %v", err)
	}
}

// TestJobEndpointErrorContract pins the error codes of the job routes.
func TestJobEndpointErrorContract(t *testing.T) {
	ts := testServer(t)
	c := client.New(ts.URL)
	ctx := context.Background()
	if _, err := c.JobStatus(ctx, "missing"); errCode(t, err) != api.CodeNotFound {
		t.Errorf("status of unknown job: %v", err)
	}
	if _, err := c.JobResult(ctx, "missing"); errCode(t, err) != api.CodeNotFound {
		t.Errorf("result of unknown job: %v", err)
	}
	if _, err := c.CancelJob(ctx, "missing"); errCode(t, err) != api.CodeNotFound {
		t.Errorf("cancel of unknown job: %v", err)
	}
	if _, err := c.SubmitJob(ctx, api.JobRequest{Kind: "bogus"}); errCode(t, err) != api.CodeInvalidArgument {
		t.Errorf("bogus submission: %v", err)
	}
	// Raw HTTP statuses, not just SDK translations.
	resp, err := http.Get(ts.URL + api.JobPath("missing"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("GET unknown job = %d, want 404", resp.StatusCode)
	}
}

func errCode(t *testing.T, err error) api.Code {
	t.Helper()
	var ae *api.Error
	if !errors.As(err, &ae) {
		t.Fatalf("error %v is not an *api.Error", err)
	}
	return ae.Code
}
