package main

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/dataset"
)

func writeLog(t *testing.T, events int) string {
	t.Helper()
	evs, err := dataset.Generate(dataset.GenConfig{Events: events, Servers: 10, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "log.csv")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := dataset.WriteCSV(f, evs); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunOnGeneratedFile(t *testing.T) {
	path := writeLog(t, 30000)
	if err := run([]string{"-in", path}); err != nil {
		t.Fatal(err)
	}
}

func TestRunThreePhaseSearch(t *testing.T) {
	path := writeLog(t, 30000)
	if err := run([]string{"-in", path, "-phases", "3"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunMissingFile(t *testing.T) {
	if err := run([]string{"-in", "/nonexistent/file.csv"}); err == nil {
		t.Fatal("expected error for missing file")
	}
}
