// Command mus-fit runs the §2 statistical pipeline of Palmer & Mitrani on a
// breakdown event log: clean the anomalous rows, derive operative and
// inoperative periods, estimate moments, fit hyperexponential distributions
// and report Kolmogorov–Smirnov goodness-of-fit decisions.
//
//	mus-gendata -out sun.csv && mus-fit -in sun.csv
//	mus-fit                      # generates a synthetic log internally
//	mus-fit -in sun.csv -phases 3  # the paper's 3-phase brute-force search
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/dataset"
	"repro/internal/dist"
	"repro/internal/figures"
	"repro/internal/stats"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "mus-fit:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("mus-fit", flag.ContinueOnError)
	var (
		in     = fs.String("in", "", "input CSV (default: generate the synthetic data set)")
		phases = fs.Int("phases", 2, "hyperexponential phases for the extra moment-search fit (2 or 3)")
		seed   = fs.Int64("seed", 0, "seed for the generated data set")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	var events []dataset.Event
	if *in != "" {
		f, err := os.Open(*in)
		if err != nil {
			return err
		}
		defer f.Close()
		events, err = dataset.ReadCSV(f)
		if err != nil {
			return err
		}
	} else {
		var err error
		events, err = dataset.Generate(dataset.GenConfig{Seed: *seed})
		if err != nil {
			return err
		}
		fmt.Println("(no -in given: analysing a freshly generated synthetic data set)")
	}
	rep, err := figures.AnalyzeDataset(events)
	if err != nil {
		return err
	}
	figures.RenderFitReport(os.Stdout, rep)

	if *phases >= 3 {
		// The paper's n=3 experiment: brute-force rate search on 5 moments;
		// finding two nearly equal rates means H2 suffices.
		clean := dataset.Clean(events)
		moments := make([]float64, 5)
		for k := 1; k <= 5; k++ {
			moments[k-1] = stats.RawMoment(clean.Operative, k)
		}
		res, err := dist.FitHNSearch(*phases, moments)
		if err != nil {
			return fmt.Errorf("H%d search: %w", *phases, err)
		}
		fmt.Printf("\n-- %d-phase brute-force search (operative periods, paper eq. 8) --\n", *phases)
		fmt.Printf("fit: %v (objective %.3g)\n", res.Dist, res.Objective)
		fmt.Println("paper observation: two of the three rates come out almost equal — a 2-phase fit suffices")
	}
	return nil
}
