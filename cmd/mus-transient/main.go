// Command mus-transient evaluates the time-dependent behaviour of the
// unreliable multi-server cluster by uniformization: the expected queue
// length trajectory from a chosen initial state, and the time to settle
// within a tolerance of the stationary mean. This extends the paper's
// stationary analysis to cold-start and backlog-recovery questions.
//
//	mus-transient -servers 6 -lambda 4.5 -rep-rates 0.2 -initial-jobs 120
package main

import (
	"flag"
	"fmt"
	"os"
	"text/tabwriter"

	"repro/internal/cliutil"
	"repro/internal/core"
	"repro/internal/transient"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "mus-transient:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("mus-transient", flag.ContinueOnError)
	var (
		servers     = fs.Int("servers", 6, "number of servers N")
		lambda      = fs.Float64("lambda", 4.5, "Poisson arrival rate λ")
		mu          = fs.Float64("mu", 1, "service rate µ")
		opWeights   = fs.String("op-weights", "0.7246,0.2754", "operative-period phase weights α")
		opRates     = fs.String("op-rates", "0.1663,0.0091", "operative-period phase rates ξ")
		repWeights  = fs.String("rep-weights", "1", "repair-period phase weights β")
		repRates    = fs.String("rep-rates", "0.2", "repair-period phase rates η")
		initialJobs = fs.Int("initial-jobs", 0, "jobs present at t = 0")
		horizon     = fs.Float64("horizon", 480, "largest time point")
		points      = fs.Int("points", 8, "number of time points (geometric spacing)")
		maxLevel    = fs.Int("max-level", 0, "queue truncation level (0 = auto)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	op, err := cliutil.ParseHyperExp(*opWeights, *opRates)
	if err != nil {
		return fmt.Errorf("operative distribution: %w", err)
	}
	rep, err := cliutil.ParseHyperExp(*repWeights, *repRates)
	if err != nil {
		return fmt.Errorf("repair distribution: %w", err)
	}
	if *points < 2 {
		return fmt.Errorf("need at least 2 time points, got %d", *points)
	}
	if *horizon <= 0 {
		return fmt.Errorf("horizon %v must be positive", *horizon)
	}
	sys := core.System{
		Servers:     *servers,
		ArrivalRate: *lambda,
		ServiceRate: *mu,
		Operative:   op,
		Repair:      rep,
	}
	params, err := sys.Params()
	if err != nil {
		return err
	}
	level := *maxLevel
	if level == 0 {
		level = 4**servers + 64
		if *initialJobs*2 > level {
			level = 2 * *initialJobs
		}
	}
	sv, err := transient.NewSolver(params, transient.Options{MaxLevel: level})
	if err != nil {
		return err
	}
	v0, err := sv.InitialState(*initialJobs, params.Size()-1)
	if err != nil {
		return err
	}
	times := make([]float64, *points)
	ratio := 1.0
	for i := 1; i < *points; i++ {
		ratio *= 2
	}
	step := *horizon / ratio
	for i := range times {
		times[i] = step
		step *= 2
	}
	path, err := sv.MeanQueuePath(v0, times)
	if err != nil {
		return err
	}
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintf(w, "t\tE[Z(t)]\n0\t%d\n", *initialJobs)
	for i, t := range times {
		fmt.Fprintf(w, "%.4g\t%.4f\n", t, path[i])
	}
	w.Flush()
	if sys.Stable() {
		perf, err := sys.Solve()
		if err != nil {
			return err
		}
		settle, err := sv.TimeToSettle(v0, times, perf.MeanJobs, 0.05)
		if err != nil {
			return err
		}
		fmt.Printf("stationary L = %.4f; ", perf.MeanJobs)
		if settle >= 0 {
			fmt.Printf("within 5%% by t ≈ %.4g\n", settle)
		} else {
			fmt.Printf("not within 5%% by t = %g (extend -horizon)\n", *horizon)
		}
	} else {
		fmt.Printf("system is unstable (load %.3f): the queue grows without bound\n", sys.Load())
	}
	return nil
}
