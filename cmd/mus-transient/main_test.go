package main

import "testing"

func TestRunColdStart(t *testing.T) {
	err := run([]string{"-servers", "2", "-lambda", "1", "-horizon", "100", "-points", "4"})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRunBacklogDrain(t *testing.T) {
	err := run([]string{
		"-servers", "2", "-lambda", "0.8", "-initial-jobs", "40",
		"-horizon", "200", "-points", "4",
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRunUnstable(t *testing.T) {
	// Unstable systems still get a transient trajectory plus a warning.
	err := run([]string{"-servers", "2", "-lambda", "10", "-horizon", "20", "-points", "3"})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRunErrors(t *testing.T) {
	cases := [][]string{
		{"-op-rates", "x"},
		{"-points", "1"},
		{"-horizon", "-5"},
		{"-servers", "0"},
	}
	for _, args := range cases {
		if err := run(args); err == nil {
			t.Errorf("args %v: expected error", args)
		}
	}
}
