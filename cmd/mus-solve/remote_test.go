package main

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"

	"repro/api"
)

// remoteStub is a minimal daemon speaking the api wire schema, recording
// what the CLI sends.
func remoteStub(t *testing.T) (*httptest.Server, *atomic.Int32, *atomic.Int32) {
	t.Helper()
	var solves, sims atomic.Int32
	mux := http.NewServeMux()
	mux.HandleFunc("POST "+api.PathSolve, func(w http.ResponseWriter, r *http.Request) {
		var req api.SolveRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			t.Errorf("solve decode: %v", err)
		}
		if err := req.Validate(); err != nil {
			w.WriteHeader(http.StatusBadRequest)
			json.NewEncoder(w).Encode(api.ErrorEnvelope{Error: api.Classify(err)}) //nolint:errcheck
			return
		}
		solves.Add(1)
		resp := api.SolveResponse{Method: req.Method, Stable: true, Perf: api.Performance{MeanJobs: 5, MeanResponse: 5 / req.Lambda}}
		if req.HoldingCost > 0 || req.ServerCost > 0 {
			cost := req.HoldingCost*5 + req.ServerCost*float64(req.Servers)
			resp.Cost = &cost
		}
		json.NewEncoder(w).Encode(resp) //nolint:errcheck
	})
	mux.HandleFunc("POST "+api.PathSimulate, func(w http.ResponseWriter, r *http.Request) {
		var req api.SimulateRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			t.Errorf("simulate decode: %v", err)
		}
		sims.Add(1)
		json.NewEncoder(w).Encode(api.SimulateResponse{ //nolint:errcheck
			Replications: 1, Converged: true, Confidence: 0.95,
			MeanQueue: api.CI{Mean: 5, HalfWidth: 0.1}, Completed: 99,
		})
	})
	ts := httptest.NewServer(mux)
	t.Cleanup(ts.Close)
	return ts, &solves, &sims
}

func TestRunRemoteSolve(t *testing.T) {
	ts, solves, _ := remoteStub(t)
	if err := run([]string{"-servers", "4", "-lambda", "2", "-server", ts.URL}); err != nil {
		t.Fatal(err)
	}
	if solves.Load() != 1 {
		t.Errorf("%d solve calls, want 1", solves.Load())
	}
}

func TestRunRemoteAllMethods(t *testing.T) {
	ts, solves, sims := remoteStub(t)
	if err := run([]string{"-servers", "4", "-lambda", "2", "-method", "all", "-c1", "4", "-c2", "1", "-server", ts.URL}); err != nil {
		t.Fatal(err)
	}
	if solves.Load() != 3 {
		t.Errorf("%d solve calls, want 3 (spectral, approx, mg)", solves.Load())
	}
	if sims.Load() != 1 {
		t.Errorf("%d simulate calls, want 1", sims.Load())
	}
}

func TestRunRemoteSim(t *testing.T) {
	ts, solves, sims := remoteStub(t)
	if err := run([]string{"-servers", "4", "-lambda", "2", "-method", "sim", "-server", ts.URL}); err != nil {
		t.Fatal(err)
	}
	if sims.Load() != 1 || solves.Load() != 0 {
		t.Errorf("sims=%d solves=%d, want 1/0", sims.Load(), solves.Load())
	}
}

func TestRunRemoteUnstableStaysLocal(t *testing.T) {
	// Stability is checked before the daemon is contacted: the CLI prints
	// the diagnosis and exits cleanly without a request.
	ts, solves, sims := remoteStub(t)
	if err := run([]string{"-servers", "2", "-lambda", "50", "-server", ts.URL}); err != nil {
		t.Fatalf("unstable system should be reported, not errored: %v", err)
	}
	if solves.Load() != 0 || sims.Load() != 0 {
		t.Errorf("unstable system still contacted the daemon (%d/%d calls)", solves.Load(), sims.Load())
	}
}

func TestRunRemoteBadMethod(t *testing.T) {
	ts, _, _ := remoteStub(t)
	if err := run([]string{"-servers", "4", "-lambda", "2", "-method", "bogus", "-server", ts.URL}); err == nil {
		t.Fatal("unknown method accepted in remote mode")
	}
}

func TestRunRemoteServerDown(t *testing.T) {
	if err := run([]string{"-servers", "4", "-lambda", "2", "-server", "http://127.0.0.1:1"}); err == nil {
		t.Fatal("expected a connection error")
	}
}
