package main

import "testing"

func TestRunDefaultsAndMethods(t *testing.T) {
	for _, method := range []string{"spectral", "approx", "mg"} {
		if err := run([]string{"-servers", "4", "-lambda", "2", "-method", method}); err != nil {
			t.Errorf("method %s: %v", method, err)
		}
	}
}

func TestRunSimulation(t *testing.T) {
	err := run([]string{"-servers", "2", "-lambda", "1", "-method", "sim", "-sim-horizon", "2000"})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRunWithCostAndQueue(t *testing.T) {
	err := run([]string{"-servers", "4", "-lambda", "2", "-c1", "4", "-c2", "1", "-qmax", "3"})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRunUnstableReportsGracefully(t *testing.T) {
	// Unstable systems print the stability diagnosis instead of failing.
	if err := run([]string{"-servers", "2", "-lambda", "50"}); err != nil {
		t.Fatalf("unstable system should be reported, not errored: %v", err)
	}
}

func TestRunErrors(t *testing.T) {
	cases := [][]string{
		{"-method", "bogus"},
		{"-op-weights", "x"},
		{"-rep-rates", ""},
		{"-servers", "0"},
	}
	for _, args := range cases {
		if err := run(args); err == nil {
			t.Errorf("args %v: expected error", args)
		}
	}
}
