// Command mus-solve evaluates one multi-server system with unreliable
// servers (Palmer & Mitrani, DSN 2006) and prints its steady-state
// performance: mean queue length L, mean response time W, queue-length
// distribution and, optionally, the cost C = c₁L + c₂N.
//
// The default flags reproduce the paper's Figure 5 setting at λ = 8:
//
//	mus-solve -servers 12 -lambda 8 -c1 4 -c2 1
//
// Methods: spectral (exact, default), approx (geometric approximation),
// mg (matrix-geometric), sim (discrete-event simulation), or all.
//
// With -server the evaluation runs on a mus-serve daemon through the
// client SDK instead of in-process — same flags, same output, shared
// worker pool and solver cache on the far side:
//
//	mus-solve -servers 12 -lambda 8 -server http://localhost:8350
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"text/tabwriter"

	"repro/api"
	"repro/client"
	"repro/internal/cliutil"
	"repro/internal/core"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "mus-solve:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("mus-solve", flag.ContinueOnError)
	var (
		servers    = fs.Int("servers", 10, "number of servers N")
		lambda     = fs.Float64("lambda", 8, "Poisson arrival rate λ")
		mu         = fs.Float64("mu", 1, "service rate µ of one operative server")
		opWeights  = fs.String("op-weights", "0.7246,0.2754", "operative-period phase weights α")
		opRates    = fs.String("op-rates", "0.1663,0.0091", "operative-period phase rates ξ")
		repWeights = fs.String("rep-weights", "1", "repair-period phase weights β")
		repRates   = fs.String("rep-rates", "25", "repair-period phase rates η")
		method     = fs.String("method", "spectral", "spectral | approx | mg | sim | all")
		c1         = fs.Float64("c1", 0, "holding cost per job per unit time (0 = skip cost)")
		c2         = fs.Float64("c2", 0, "cost per server per unit time")
		qmax       = fs.Int("qmax", 0, "print P(queue = j) for j ≤ qmax (in-process only)")
		horizon    = fs.Float64("sim-horizon", 300000, "simulation horizon (sim method)")
		seed       = fs.Int64("sim-seed", 0, "simulation seed (sim method)")
		serverURL  = fs.String("server", "", "evaluate on a mus-serve daemon at this base URL instead of in-process")
		async      = fs.Bool("async", false, "with -server, run the simulation leg via the asynchronous job API")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	op, err := cliutil.ParseHyperExp(*opWeights, *opRates)
	if err != nil {
		return fmt.Errorf("operative distribution: %w", err)
	}
	rep, err := cliutil.ParseHyperExp(*repWeights, *repRates)
	if err != nil {
		return fmt.Errorf("repair distribution: %w", err)
	}
	sys := core.System{
		Servers:     *servers,
		ArrivalRate: *lambda,
		ServiceRate: *mu,
		Operative:   op,
		Repair:      rep,
	}
	if err := sys.Validate(); err != nil {
		return err
	}
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	defer w.Flush()
	fmt.Fprintf(w, "system\tN=%d λ=%g µ=%g\n", sys.Servers, sys.ArrivalRate, sys.ServiceRate)
	fmt.Fprintf(w, "operative\t%v (mean %.4g, C²=%.3g)\n", op, op.Mean(), op.CV2())
	fmt.Fprintf(w, "repair\t%v (mean %.4g)\n", rep, rep.Mean())
	fmt.Fprintf(w, "availability\t%.6g\n", sys.Availability())
	fmt.Fprintf(w, "offered load\t%.6g\n", sys.Load())
	fmt.Fprintf(w, "modes s\t%d\n", sys.Modes())
	if !sys.Stable() {
		if n, nerr := core.MinServersForStability(sys); nerr == nil {
			fmt.Fprintf(w, "stability\tUNSTABLE (eq. 11 violated) — need N ≥ %d\n", n)
		} else {
			fmt.Fprintf(w, "stability\tUNSTABLE (eq. 11 violated) — no stabilising N: %v\n", nerr)
		}
		return nil
	}
	if *serverURL != "" {
		return runRemote(w, *serverURL, sys, *method, *c1, *c2, *qmax, *horizon, *seed, *async)
	}

	methods := map[string][]core.Method{
		"spectral": {core.Spectral},
		"approx":   {core.Approximation},
		"mg":       {core.MatrixGeometric},
		"all":      {core.Spectral, core.Approximation, core.MatrixGeometric},
	}
	if *method == "sim" || *method == "all" {
		res, err := sys.Simulate(core.SimOptions{Seed: *seed, Horizon: *horizon})
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "sim\tL=%.6g ± %.3g, W=%.6g, availability=%.5g, completed=%d\n",
			res.MeanQueue, res.MeanQueueHalfWidth, res.MeanResponse, res.Availability, res.Completed)
		if *method == "sim" {
			return nil
		}
	}
	ms, ok := methods[*method]
	if !ok {
		return fmt.Errorf("unknown method %q", *method)
	}
	for _, m := range ms {
		perf, err := sys.SolveWith(m)
		if err != nil {
			return fmt.Errorf("%v: %w", m, err)
		}
		fmt.Fprintf(w, "%v\tL=%.6g, W=%.6g, tail z=%.6g\n", m, perf.MeanJobs, perf.MeanResponse, perf.TailDecay)
		if *c1 > 0 || *c2 > 0 {
			cm := core.CostModel{HoldingCost: *c1, ServerCost: *c2}
			fmt.Fprintf(w, "\tcost C = c1·L + c2·N = %.6g\n", cm.Cost(perf.MeanJobs, sys.Servers))
		}
		if *qmax > 0 && m == core.Spectral {
			for j := 0; j <= *qmax; j++ {
				fmt.Fprintf(w, "\tP(queue=%d) = %.6g\n", j, perf.QueueProb(j))
			}
		}
	}
	return nil
}

// runRemote evaluates through a mus-serve daemon: the same wire schema
// (package api) the server handlers use, spoken via the client SDK, so
// CLI and daemon can never drift apart.
func runRemote(w io.Writer, serverURL string, sys core.System, method string, c1, c2 float64, qmax int, horizon float64, seed int64, async bool) error {
	c := client.New(serverURL)
	ctx := context.Background()
	wire := api.FromSystem(sys)
	fmt.Fprintf(w, "server\t%s\n", serverURL)
	if qmax > 0 {
		fmt.Fprintf(w, "note\tqueue-length distribution is not served remotely; drop -server for -qmax\n")
	}
	if method == "sim" || method == "all" {
		simReq := api.SimulateRequest{System: wire, Seed: seed, Horizon: horizon, Replications: 1}
		var res *api.SimulateResponse
		var err error
		if async {
			// The simulation is the long leg of a solve run; with -async it
			// rides the job API — submitted, polled to completion, fetched —
			// while the cheap analytic legs stay synchronous.
			res, err = simulateViaJob(ctx, w, c, simReq)
		} else {
			res, err = c.Simulate(ctx, simReq)
		}
		if err != nil {
			return remoteErr(err)
		}
		fmt.Fprintf(w, "sim\tL=%.6g ± %.3g, W=%.6g, availability=%.5g, completed=%d\n",
			res.MeanQueue.Mean, res.MeanQueue.HalfWidth, res.MeanResponse.Mean, res.Availability.Mean, res.Completed)
		if method == "sim" {
			return nil
		}
	}
	methods := map[string][]string{
		"spectral": {api.MethodSpectral},
		"approx":   {api.MethodApprox},
		"mg":       {api.MethodMG},
		"all":      {api.MethodSpectral, api.MethodApprox, api.MethodMG},
	}
	ms, ok := methods[method]
	if !ok {
		return fmt.Errorf("unknown method %q", method)
	}
	for _, m := range ms {
		resp, err := c.Solve(ctx, api.SolveRequest{System: wire, Method: m, HoldingCost: c1, ServerCost: c2})
		if err != nil {
			return remoteErr(err)
		}
		fmt.Fprintf(w, "%s\tL=%.6g, W=%.6g, tail z=%.6g\n",
			resp.Method, resp.Perf.MeanJobs, resp.Perf.MeanResponse, resp.Perf.TailDecay)
		if resp.Cost != nil {
			fmt.Fprintf(w, "\tcost C = c1·L + c2·N = %.6g\n", *resp.Cost)
		}
	}
	return nil
}

// simulateViaJob runs the remote simulation through the daemon's
// asynchronous job API (client.RunJob: submit, wait with polling
// backoff, fetch), printing the job line once on submission.
func simulateViaJob(ctx context.Context, w io.Writer, c *client.Client, req api.SimulateRequest) (*api.SimulateResponse, error) {
	printed := false
	res, err := c.RunJob(ctx, api.NewSimulateJob(req), func(js api.JobStatus) {
		if !printed {
			fmt.Fprintf(w, "job\t%s (%s)\n", js.ID, js.State)
			printed = true
		}
	})
	if err != nil {
		return nil, err
	}
	return res.Simulate, nil
}

// remoteErr strips SDK wrapping down to the structured message for the
// terminal while keeping unexpected failures verbatim.
func remoteErr(err error) error {
	var ae *api.Error
	if errors.As(err, &ae) {
		return fmt.Errorf("server rejected the request: %s", ae.Message)
	}
	return err
}
