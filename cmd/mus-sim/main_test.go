package main

import "testing"

func TestRunHyperexponential(t *testing.T) {
	err := run([]string{
		"-servers", "3", "-lambda", "1.5", "-op-cv2", "4.6",
		"-warmup", "100", "-horizon", "5000", "-qmax", "3",
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRunDeterministicOperative(t *testing.T) {
	// The Figure 6 C²=0 shape.
	err := run([]string{
		"-servers", "3", "-lambda", "1.5", "-op-cv2", "0",
		"-warmup", "100", "-horizon", "5000",
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRunErlangOperative(t *testing.T) {
	err := run([]string{
		"-servers", "2", "-lambda", "1", "-op-cv2", "0.25",
		"-warmup", "100", "-horizon", "5000",
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRunReplicatedFlags(t *testing.T) {
	err := run([]string{
		"-servers", "3", "-lambda", "1.5", "-seed", "7",
		"-warmup", "100", "-horizon", "3000", "-qmax", "2",
		"-reps", "4", "-workers", "2",
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRunRelPrecisionFlags(t *testing.T) {
	err := run([]string{
		"-servers", "3", "-lambda", "1.5", "-seed", "7",
		"-warmup", "100", "-horizon", "3000",
		"-reps", "16", "-min-reps", "3", "-rel-precision", "0.5",
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRunBadReplicationFlags(t *testing.T) {
	if err := run([]string{"-reps", "2", "-confidence", "2", "-horizon", "1000"}); err == nil {
		t.Fatal("expected error for confidence outside (0,1)")
	}
}

func TestRunBadDistribution(t *testing.T) {
	if err := run([]string{"-op-mean", "-1"}); err == nil {
		t.Fatal("expected error for negative mean")
	}
	if err := run([]string{"-rep-cv2", "-2"}); err == nil {
		t.Fatal("expected error for negative CV²")
	}
}
