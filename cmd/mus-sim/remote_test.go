package main

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"

	"repro/api"
)

func simStub(t *testing.T) (*httptest.Server, *atomic.Int32) {
	t.Helper()
	var calls atomic.Int32
	mux := http.NewServeMux()
	mux.HandleFunc("POST "+api.PathSimulate, func(w http.ResponseWriter, r *http.Request) {
		var req api.SimulateRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			t.Errorf("decode: %v", err)
		}
		if err := req.Validate(); err != nil {
			w.WriteHeader(http.StatusBadRequest)
			json.NewEncoder(w).Encode(api.ErrorEnvelope{Error: api.Classify(err)}) //nolint:errcheck
			return
		}
		calls.Add(1)
		json.NewEncoder(w).Encode(api.SimulateResponse{ //nolint:errcheck
			Fingerprint:  "stub",
			Replications: req.Options().Replications,
			Converged:    true,
			Confidence:   0.95,
			MeanQueue:    api.CI{Mean: 3.2, HalfWidth: 0.1},
			MeanResponse: api.CI{Mean: 2.1, HalfWidth: 0.05},
			Availability: api.CI{Mean: 0.99, HalfWidth: 0.001},
			Completed:    4242,
		})
	})
	ts := httptest.NewServer(mux)
	t.Cleanup(ts.Close)
	return ts, &calls
}

func TestRunRemoteReplicated(t *testing.T) {
	ts, calls := simStub(t)
	err := run([]string{
		"-servers", "3", "-lambda", "1.5", "-reps", "4",
		"-warmup", "100", "-horizon", "3000", "-server", ts.URL,
	})
	if err != nil {
		t.Fatal(err)
	}
	if calls.Load() != 1 {
		t.Errorf("%d simulate calls, want 1", calls.Load())
	}
}

func TestRunRemoteRejectsNonHyperexpShapes(t *testing.T) {
	ts, calls := simStub(t)
	// The C²=0 deterministic shape has no wire form; the CLI must refuse
	// locally instead of sending a lossy approximation.
	if err := run([]string{"-servers", "3", "-lambda", "1.5", "-op-cv2", "0", "-server", ts.URL}); err == nil {
		t.Fatal("deterministic operative periods accepted in remote mode")
	}
	if err := run([]string{"-servers", "2", "-lambda", "1", "-op-cv2", "0.25", "-server", ts.URL}); err == nil {
		t.Fatal("Erlang operative periods accepted in remote mode")
	}
	if calls.Load() != 0 {
		t.Errorf("daemon was contacted %d times for unrepresentable shapes", calls.Load())
	}
}

func TestRunRemoteServerDown(t *testing.T) {
	if err := run([]string{"-servers", "3", "-lambda", "1.5", "-server", "http://127.0.0.1:1"}); err == nil {
		t.Fatal("expected a connection error")
	}
}
