// Command mus-sim runs the discrete-event simulator of the multi-server
// queue with breakdowns and repairs. Unlike the analytical solvers it
// accepts any squared coefficient of variation for the period
// distributions — including the deterministic (C² = 0) and Erlang (C² < 1)
// shapes of Figure 6 that no hyperexponential can represent.
//
//	mus-sim -servers 10 -lambda 8.5 -op-mean 34.62 -op-cv2 0 -rep-mean 5
//
// With -reps ≥ 2 the run fans out across parallel independent
// replications (one deterministic RNG stream per replication, so results
// are reproducible for a fixed -seed) and reports Student-t confidence
// intervals; -rel-precision ε keeps adding replications until the CI
// half-width on L is within ε of the mean, capped at -reps:
//
//	mus-sim -servers 10 -lambda 8 -reps 32 -rel-precision 0.05
//
// With -server the replications run on a mus-serve daemon through the
// client SDK (memoised by the daemon's simulation cache); only
// hyperexponential shapes (C² ≥ 1) exist on the wire, so the C² < 1
// shapes stay in-process:
//
//	mus-sim -servers 10 -lambda 8 -reps 16 -server http://localhost:8350
//
// Large remote workloads — -reps of 32 or more, or any run with -async —
// go through the daemon's asynchronous job API (/v1/jobs) instead of one
// long synchronous request: the run is submitted, polled with backoff
// while its state advances, and survives transient connection loss:
//
//	mus-sim -servers 10 -lambda 8 -reps 64 -server http://localhost:8350 -async
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"

	"repro/api"
	"repro/client"
	"repro/internal/dist"
	"repro/internal/sim"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "mus-sim:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("mus-sim", flag.ContinueOnError)
	var (
		servers   = fs.Int("servers", 10, "number of servers N")
		lambda    = fs.Float64("lambda", 8, "Poisson arrival rate λ")
		mu        = fs.Float64("mu", 1, "service rate µ")
		opMean    = fs.Float64("op-mean", 34.62, "mean operative period")
		opCV2     = fs.Float64("op-cv2", 4.6, "squared coefficient of variation of operative periods")
		repMean   = fs.Float64("rep-mean", 0.04, "mean repair period")
		repCV2    = fs.Float64("rep-cv2", 1, "squared coefficient of variation of repair periods")
		warmup    = fs.Float64("warmup", 5000, "discarded warmup time per replication")
		horizon   = fs.Float64("horizon", 300000, "measured simulation time per replication")
		seed      = fs.Int64("seed", 0, "base random seed (0 = fixed default)")
		qmax      = fs.Int("qmax", 0, "print queue-length distribution up to this length")
		reps      = fs.Int("reps", 1, "independent replications R_max (≥ 2 enables Student-t CIs)")
		minReps   = fs.Int("min-reps", 0, "replications before the stopping rule applies (0 = default)")
		relPrec   = fs.Float64("rel-precision", 0, "stop once the CI half-width on L is within this fraction of the mean (0 = run exactly -reps)")
		conf      = fs.Float64("confidence", 0.95, "confidence level of the intervals")
		workers   = fs.Int("workers", 0, "parallel replication workers (0 = one per CPU; never affects results)")
		serverURL = fs.String("server", "", "simulate on a mus-serve daemon at this base URL instead of in-process")
		async     = fs.Bool("async", false, "with -server, run via the asynchronous job API (automatic for -reps ≥ 32)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	op, err := dist.WithMeanCV2(*opMean, *opCV2)
	if err != nil {
		return fmt.Errorf("operative distribution: %w", err)
	}
	rep, err := dist.WithMeanCV2(*repMean, *repCV2)
	if err != nil {
		return fmt.Errorf("repair distribution: %w", err)
	}
	if *serverURL != "" {
		return runRemote(*serverURL, op, rep, remoteOptions{
			servers: *servers, lambda: *lambda, mu: *mu,
			seed: *seed, warmup: *warmup, horizon: *horizon,
			reps: *reps, minReps: *minReps, relPrec: *relPrec, conf: *conf,
			qmax: *qmax, async: *async,
		})
	}
	cfg := sim.Config{
		Servers:   *servers,
		Lambda:    *lambda,
		Mu:        *mu,
		Operative: op,
		Repair:    rep,
		Seed:      *seed,
		Warmup:    *warmup,
		Horizon:   *horizon,
	}
	fmt.Printf("operative: %v   repair: %v\n", op, rep)
	if *reps >= 2 {
		res, err := sim.RunReplicated(context.Background(), sim.RepConfig{
			Config:          cfg,
			Replications:    *reps,
			MinReplications: *minReps,
			RelPrecision:    *relPrec,
			Confidence:      *conf,
			Workers:         *workers,
		})
		if err != nil {
			return err
		}
		pct := 100 * *conf
		fmt.Printf("replications = %d (converged = %v)\n", res.Replications, res.Converged)
		fmt.Printf("L  = %.6g ± %.3g (%g%% CI over replications)\n", res.MeanQueue.Mean, res.MeanQueue.HalfWidth, pct)
		fmt.Printf("W  = %.6g ± %.3g\n", res.MeanResponse.Mean, res.MeanResponse.HalfWidth)
		fmt.Printf("availability = %.6g ± %.3g\n", res.Availability.Mean, res.Availability.HalfWidth)
		fmt.Printf("jobs completed = %d\n", res.Completed)
		for j := 0; j <= *qmax && j < len(res.QueueDist); j++ {
			fmt.Printf("P(queue=%d) = %.6g\n", j, res.QueueDist[j])
		}
		return nil
	}
	res, err := sim.Run(cfg)
	if err != nil {
		return err
	}
	fmt.Printf("L  = %.6g ± %.3g (95%% batch-means CI)\n", res.MeanQueue, res.MeanQueueHalfWidth)
	fmt.Printf("W  = %.6g\n", res.MeanResponse)
	fmt.Printf("availability = %.6g\n", res.Availability)
	fmt.Printf("jobs completed = %d\n", res.Completed)
	for j := 0; j <= *qmax && j < len(res.QueueDist); j++ {
		fmt.Printf("P(queue=%d) = %.6g\n", j, res.QueueDist[j])
	}
	return nil
}

// remoteOptions carries the flag values of one remote run.
type remoteOptions struct {
	servers         int
	lambda, mu      float64
	seed            int64
	warmup, horizon float64
	reps, minReps   int
	relPrec, conf   float64
	qmax            int
	async           bool
}

// asyncRepsThreshold is the replication count from which a remote run
// routes through the asynchronous job API even without -async: runs that
// large are exactly the workloads the job layer exists for.
const asyncRepsThreshold = 32

// runRemote simulates on a mus-serve daemon through the client SDK. The
// wire schema is hyperexponential, so the deterministic and Erlang shapes
// of Figure 6 (C² < 1) must stay in-process.
func runRemote(serverURL string, op, rep dist.Distribution, o remoteOptions) error {
	opH, ok := op.(*dist.HyperExp)
	if !ok {
		return fmt.Errorf("operative distribution %v is not hyperexponential; C² < 1 shapes cannot run via -server", op)
	}
	repH, ok := rep.(*dist.HyperExp)
	if !ok {
		return fmt.Errorf("repair distribution %v is not hyperexponential; C² < 1 shapes cannot run via -server", rep)
	}
	if o.conf == 0.95 {
		o.conf = 0 // the wire default; keeps the request minimal and cacheable
	}
	c := client.New(serverURL)
	req := api.SimulateRequest{
		System: api.System{
			Servers:    o.servers,
			Lambda:     o.lambda,
			Mu:         o.mu,
			OpWeights:  opH.Weights,
			OpRates:    opH.Rates,
			RepWeights: repH.Weights,
			RepRates:   repH.Rates,
		},
		Seed:            o.seed,
		Warmup:          o.warmup,
		Horizon:         o.horizon,
		Replications:    o.reps,
		MinReplications: o.minReps,
		RelPrecision:    o.relPrec,
		Confidence:      o.conf,
	}
	var res *api.SimulateResponse
	var err error
	if o.async || o.reps >= asyncRepsThreshold {
		res, err = simulateAsync(c, req)
	} else {
		res, err = c.Simulate(context.Background(), req)
	}
	if err != nil {
		var ae *api.Error
		if errors.As(err, &ae) {
			return fmt.Errorf("server rejected the request: %s", ae.Message)
		}
		return err
	}
	fmt.Printf("operative: %v   repair: %v   server: %s\n", op, rep, serverURL)
	fmt.Printf("replications = %d (converged = %v)\n", res.Replications, res.Converged)
	pct := 100 * res.Confidence
	fmt.Printf("L  = %.6g ± %.3g (%g%% CI over replications)\n", res.MeanQueue.Mean, res.MeanQueue.HalfWidth, pct)
	fmt.Printf("W  = %.6g ± %.3g\n", res.MeanResponse.Mean, res.MeanResponse.HalfWidth)
	fmt.Printf("availability = %.6g ± %.3g\n", res.Availability.Mean, res.Availability.HalfWidth)
	fmt.Printf("jobs completed = %d\n", res.Completed)
	if o.qmax > 0 {
		fmt.Println("note: queue-length distribution is not served remotely; drop -server for -qmax")
	}
	return nil
}

// simulateAsync runs a replicated simulation through the daemon's job API
// (client.RunJob: submit, poll with backoff, fetch), printing each state
// transition — identical output to the synchronous path once done.
func simulateAsync(c *client.Client, req api.SimulateRequest) (*api.SimulateResponse, error) {
	last := ""
	res, err := c.RunJob(context.Background(), api.NewSimulateJob(req), func(js api.JobStatus) {
		if js.State != last {
			fmt.Printf("job %s: %s\n", js.ID, js.State)
			last = js.State
		}
	})
	if err != nil {
		return nil, err
	}
	return res.Simulate, nil
}
