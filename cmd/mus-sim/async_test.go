package main

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"

	"repro/api"
)

// jobStub is a miniature job API: submissions are accepted, the second
// status poll reports done, and the result echoes a fixed simulate
// response — enough to drive the CLI's async path end to end.
func jobStub(t *testing.T) (*httptest.Server, *atomic.Int32, *atomic.Int32) {
	t.Helper()
	var submits, syncCalls atomic.Int32
	var polls atomic.Int32
	mux := http.NewServeMux()
	mux.HandleFunc("POST "+api.PathSimulate, func(w http.ResponseWriter, r *http.Request) {
		syncCalls.Add(1)
		json.NewEncoder(w).Encode(api.SimulateResponse{Replications: 1}) //nolint:errcheck
	})
	mux.HandleFunc("POST "+api.PathJobs, func(w http.ResponseWriter, r *http.Request) {
		var req api.JobRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			t.Errorf("decode job: %v", err)
		}
		if err := req.Validate(); err != nil {
			w.WriteHeader(http.StatusBadRequest)
			json.NewEncoder(w).Encode(api.ErrorEnvelope{Error: api.Classify(err)}) //nolint:errcheck
			return
		}
		if req.Kind != api.JobKindSimulate {
			t.Errorf("job kind %q, want simulate", req.Kind)
		}
		submits.Add(1)
		w.WriteHeader(http.StatusAccepted)
		json.NewEncoder(w).Encode(api.JobStatus{ID: "j1", Kind: req.Kind, State: api.JobStateQueued}) //nolint:errcheck
	})
	mux.HandleFunc("GET "+api.PathJobs+"/{id}", func(w http.ResponseWriter, r *http.Request) {
		st := api.JobStatus{ID: r.PathValue("id"), Kind: api.JobKindSimulate, State: api.JobStateRunning}
		if polls.Add(1) >= 2 {
			st.State = api.JobStateDone
		}
		json.NewEncoder(w).Encode(st) //nolint:errcheck
	})
	mux.HandleFunc("GET "+api.PathJobs+"/{id}/result", func(w http.ResponseWriter, r *http.Request) {
		json.NewEncoder(w).Encode(api.JobResult{ //nolint:errcheck
			ID: r.PathValue("id"), Kind: api.JobKindSimulate,
			Simulate: &api.SimulateResponse{
				Fingerprint: "stub", Replications: 32, Converged: true, Confidence: 0.95,
				MeanQueue: api.CI{Mean: 3.2, HalfWidth: 0.1}, Completed: 4242,
			},
		})
	})
	ts := httptest.NewServer(mux)
	t.Cleanup(ts.Close)
	return ts, &submits, &syncCalls
}

func TestRunRemoteAsyncFlagUsesJobs(t *testing.T) {
	ts, submits, syncCalls := jobStub(t)
	err := run([]string{"-servers", "3", "-lambda", "1.5", "-reps", "4", "-server", ts.URL, "-async"})
	if err != nil {
		t.Fatal(err)
	}
	if submits.Load() != 1 || syncCalls.Load() != 0 {
		t.Errorf("submits=%d syncCalls=%d; -async must route through /v1/jobs", submits.Load(), syncCalls.Load())
	}
}

func TestRunRemoteLargeWorkloadsUseJobsAutomatically(t *testing.T) {
	ts, submits, syncCalls := jobStub(t)
	err := run([]string{"-servers", "3", "-lambda", "1.5", "-reps", "32", "-server", ts.URL})
	if err != nil {
		t.Fatal(err)
	}
	if submits.Load() != 1 || syncCalls.Load() != 0 {
		t.Errorf("submits=%d syncCalls=%d; -reps ≥ 32 must route through /v1/jobs without -async", submits.Load(), syncCalls.Load())
	}
}

func TestRunRemoteSmallWorkloadsStaySynchronous(t *testing.T) {
	ts, submits, syncCalls := jobStub(t)
	err := run([]string{"-servers", "3", "-lambda", "1.5", "-reps", "4", "-server", ts.URL})
	if err != nil {
		t.Fatal(err)
	}
	if submits.Load() != 0 || syncCalls.Load() != 1 {
		t.Errorf("submits=%d syncCalls=%d; small runs must stay on /v1/simulate", submits.Load(), syncCalls.Load())
	}
}
