// Command mus-figures regenerates every table and figure of Palmer &
// Mitrani (DSN 2006): the §2 density fits (Figures 3–4) from the synthetic
// Sun-style breakdown log, and the §4 performance experiments
// (Figures 5–9). Output is an aligned text table per figure; -dat also
// writes gnuplot-style series files.
//
//	mus-figures            # everything, paper-scale
//	mus-figures -fig 5     # one figure
//	mus-figures -quick     # smoke-test scale (short simulations)
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/figures"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "mus-figures:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("mus-figures", flag.ContinueOnError)
	var (
		fig   = fs.String("fig", "all", "figure to regenerate: 3|4|5|6|7|8|9|sim|fit|all")
		quick = fs.Bool("quick", false, "reduced sweeps and simulation horizons")
		seed  = fs.Int64("seed", 0, "random seed override for data generation / simulation")
		dat   = fs.String("dat", "", "directory for gnuplot-style .dat series files")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	opts := figures.Options{Quick: *quick, Seed: *seed}

	if *fig == "fit" {
		return printFitReport(opts)
	}
	builders := map[string]func(figures.Options) (*figures.Figure, error){
		"3":   figures.Figure3,
		"4":   figures.Figure4,
		"5":   figures.Figure5,
		"6":   figures.Figure6,
		"7":   figures.Figure7,
		"8":   figures.Figure8,
		"9":   figures.Figure9,
		"sim": figures.SimAgreement,
	}
	var figs []*figures.Figure
	if *fig == "all" {
		all, err := figures.All(opts)
		if err != nil {
			return err
		}
		figs = all
		if err := printFitReport(opts); err != nil {
			return err
		}
	} else {
		b, ok := builders[*fig]
		if !ok {
			return fmt.Errorf("unknown figure %q", *fig)
		}
		f, err := b(opts)
		if err != nil {
			return err
		}
		figs = []*figures.Figure{f}
	}
	for _, f := range figs {
		if err := figures.Render(os.Stdout, f); err != nil {
			return err
		}
		fmt.Println()
		if *dat != "" {
			if err := os.MkdirAll(*dat, 0o755); err != nil {
				return err
			}
			if err := f.WriteDat(*dat); err != nil {
				return err
			}
		}
	}
	return nil
}

func printFitReport(opts figures.Options) error {
	rep, err := figures.Sec2Report(opts)
	if err != nil {
		return err
	}
	figures.RenderFitReport(os.Stdout, rep)
	return nil
}
