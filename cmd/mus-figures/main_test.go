package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestRunSingleFigureQuick(t *testing.T) {
	if err := run([]string{"-fig", "7", "-quick"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunWritesDatFiles(t *testing.T) {
	dir := t.TempDir()
	if err := run([]string{"-fig", "9", "-dat", dir}); err != nil {
		t.Fatal(err)
	}
	matches, err := filepath.Glob(filepath.Join(dir, "fig9_*.dat"))
	if err != nil {
		t.Fatal(err)
	}
	if len(matches) != 2 {
		t.Fatalf("expected 2 .dat series, found %v", matches)
	}
	body, err := os.ReadFile(matches[0])
	if err != nil {
		t.Fatal(err)
	}
	if len(body) == 0 {
		t.Error("empty .dat file")
	}
}

func TestRunFitReport(t *testing.T) {
	if err := run([]string{"-fig", "fit", "-quick", "-seed", "1"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunUnknownFigure(t *testing.T) {
	if err := run([]string{"-fig", "99"}); err == nil {
		t.Fatal("expected error for unknown figure")
	}
}
