package client

import (
	"context"
	"net/http"

	"repro/api"
)

// Traces lists recently retained trace roots (GET /v1/traces), newest
// first. A clustered daemon merges its peers' retained roots into the
// listing.
func (c *Client) Traces(ctx context.Context) (*api.TraceListResponse, error) {
	var resp api.TraceListResponse
	if err := c.call(ctx, http.MethodGet, api.PathTraces, nil, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// Trace fetches one trace's assembled span tree (GET /v1/traces/{id}).
// The serving node gathers every peer's buffered spans for the trace and
// returns them as one tree; a trace nobody retains any spans for
// surfaces as code api.CodeJobNotFound-style not_found.
func (c *Client) Trace(ctx context.Context, id string) (*api.TraceResponse, error) {
	var resp api.TraceResponse
	if err := c.call(ctx, http.MethodGet, api.TracePath(id), nil, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}
