package client

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/api"
)

// stubServer is a miniature mus-serve speaking the api wire schema: it
// round-trips every endpoint's request/response types without doing real
// solver work, so these tests pin the SDK's wire behaviour (encoding,
// typed errors, streaming, retries) in isolation. The full-stack
// round trip against the real daemon handlers lives in cmd/mus-serve.
func stubServer(t *testing.T) *httptest.Server {
	t.Helper()
	mux := http.NewServeMux()
	writeErr := func(w http.ResponseWriter, ae *api.Error, reqID string) {
		w.Header().Set("Content-Type", api.ContentTypeJSON)
		w.WriteHeader(ae.HTTPStatus())
		json.NewEncoder(w).Encode(api.ErrorEnvelope{Error: ae, RequestID: reqID}) //nolint:errcheck
	}
	mux.HandleFunc("POST "+api.PathSolve, func(w http.ResponseWriter, r *http.Request) {
		var req api.SolveRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			writeErr(w, api.InvalidArgument("body", "decode: %v", err), "")
			return
		}
		if err := req.Validate(); err != nil {
			writeErr(w, api.Classify(err), "req-stub-1")
			return
		}
		sys, err := req.ToSystem()
		if err != nil {
			writeErr(w, api.Classify(err), "")
			return
		}
		if !sys.Stable() {
			writeErr(w, api.Unstable(sys), "req-stub-2")
			return
		}
		resp := api.SolveResponse{
			Fingerprint:  sys.Fingerprint(),
			Method:       "spectral",
			Availability: sys.Availability(),
			Modes:        sys.Modes(),
			Stable:       true,
			Perf:         api.Performance{MeanJobs: 42, MeanResponse: 42 / sys.ArrivalRate, Load: sys.Load()},
		}
		if req.HoldingCost > 0 || req.ServerCost > 0 {
			cost := req.HoldingCost*42 + req.ServerCost*float64(sys.Servers)
			resp.Cost = &cost
		}
		json.NewEncoder(w).Encode(resp) //nolint:errcheck
	})
	mux.HandleFunc("POST "+api.PathSweep, func(w http.ResponseWriter, r *http.Request) {
		var req api.SweepRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			writeErr(w, api.InvalidArgument("body", "decode: %v", err), "")
			return
		}
		if err := req.Validate(); err != nil {
			writeErr(w, api.Classify(err), "")
			return
		}
		points := make([]api.SweepPoint, len(req.Values))
		for i, v := range req.Values {
			points[i] = api.SweepPoint{Index: i, Value: v, Perf: &api.Performance{MeanJobs: v * 2}}
		}
		if r.Header.Get("Accept") == api.ContentTypeNDJSON {
			w.Header().Set("Content-Type", api.ContentTypeNDJSON)
			enc := json.NewEncoder(w)
			fl, _ := w.(http.Flusher)
			for _, pt := range points {
				enc.Encode(pt) //nolint:errcheck
				if fl != nil {
					fl.Flush()
				}
			}
			return
		}
		json.NewEncoder(w).Encode(api.SweepResponse{Method: "spectral", Param: req.Param, Points: points}) //nolint:errcheck
	})
	mux.HandleFunc("POST "+api.PathOptimize, func(w http.ResponseWriter, r *http.Request) {
		var req api.OptimizeRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			writeErr(w, api.InvalidArgument("body", "decode: %v", err), "")
			return
		}
		if err := req.Validate(); err != nil {
			writeErr(w, api.Classify(err), "")
			return
		}
		if req.TargetResponse > 0 && req.TargetResponse < 0.001 {
			writeErr(w, &api.Error{Code: api.CodeUnsatisfiable, Message: "no N achieves the target"}, "")
			return
		}
		cost := 58.13
		json.NewEncoder(w).Encode(api.OptimizeResponse{ //nolint:errcheck
			Objective: "stub", Servers: 12, Cost: &cost, Perf: api.Performance{MeanJobs: 8.28},
		})
	})
	mux.HandleFunc("POST "+api.PathSimulate, func(w http.ResponseWriter, r *http.Request) {
		var req api.SimulateRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			writeErr(w, api.InvalidArgument("body", "decode: %v", err), "")
			return
		}
		if err := req.Validate(); err != nil {
			writeErr(w, api.Classify(err), "")
			return
		}
		json.NewEncoder(w).Encode(api.SimulateResponse{ //nolint:errcheck
			Fingerprint:  "stub",
			Replications: req.Options().Replications,
			Converged:    true,
			Confidence:   0.95,
			MeanQueue:    api.CI{Mean: 12.3, HalfWidth: 0.2},
			MeanResponse: api.CI{Mean: 1.5, HalfWidth: 0.03},
			Availability: api.CI{Mean: 0.993, HalfWidth: 0.001},
			Completed:    1000,
		})
	})
	mux.HandleFunc("GET "+api.PathStats, func(w http.ResponseWriter, r *http.Request) {
		json.NewEncoder(w).Encode(api.StatsResponse{Workers: 4, Solves: 7, Cache: api.CacheStats{Hits: 3, Misses: 7, HitRate: 0.3}}) //nolint:errcheck
	})
	mux.HandleFunc("GET "+api.PathHealthz, func(w http.ResponseWriter, r *http.Request) {
		json.NewEncoder(w).Encode(api.HealthResponse{Status: "ok", Workers: 4, CacheCapacity: 4096, SimCacheCapacity: 256}) //nolint:errcheck
	})
	ts := httptest.NewServer(mux)
	t.Cleanup(ts.Close)
	return ts
}

func TestClientRoundTripsAllEndpoints(t *testing.T) {
	ts := stubServer(t)
	c := New(ts.URL)
	ctx := context.Background()

	solve, err := c.Solve(ctx, api.SolveRequest{System: api.System{Servers: 12, Lambda: 8}, HoldingCost: 4, ServerCost: 1})
	if err != nil {
		t.Fatalf("solve: %v", err)
	}
	if solve.Perf.MeanJobs != 42 || solve.Cost == nil || *solve.Cost != 4*42+12 {
		t.Errorf("solve round trip lost fields: %+v", solve)
	}

	sweep, err := c.Sweep(ctx, api.SweepRequest{System: api.System{Servers: 10}, Param: api.ParamLambda, Values: []float64{1, 2, 3}})
	if err != nil {
		t.Fatalf("sweep: %v", err)
	}
	if len(sweep.Points) != 3 || sweep.Points[2].Perf.MeanJobs != 6 {
		t.Errorf("sweep round trip lost fields: %+v", sweep)
	}

	opt, err := c.Optimize(ctx, api.OptimizeRequest{System: api.System{Lambda: 8}, HoldingCost: 4, ServerCost: 1, MinServers: 9, MaxServers: 17})
	if err != nil {
		t.Fatalf("optimize: %v", err)
	}
	if opt.Servers != 12 || opt.Cost == nil {
		t.Errorf("optimize round trip lost fields: %+v", opt)
	}

	sim, err := c.Simulate(ctx, api.SimulateRequest{System: api.System{Servers: 3, Lambda: 1.8}})
	if err != nil {
		t.Fatalf("simulate: %v", err)
	}
	if sim.Replications != api.DefaultReplications || sim.MeanQueue.HalfWidth != 0.2 {
		t.Errorf("simulate round trip lost fields: %+v", sim)
	}

	st, err := c.Stats(ctx)
	if err != nil {
		t.Fatalf("stats: %v", err)
	}
	if st.Solves != 7 || st.Cache.Hits != 3 {
		t.Errorf("stats round trip lost fields: %+v", st)
	}

	h, err := c.Health(ctx)
	if err != nil {
		t.Fatalf("health: %v", err)
	}
	if h.Status != "ok" || h.Workers != 4 {
		t.Errorf("health round trip lost fields: %+v", h)
	}
}

func TestClientTypedErrors(t *testing.T) {
	ts := stubServer(t)
	c := New(ts.URL)
	ctx := context.Background()

	_, err := c.Solve(ctx, api.SolveRequest{System: api.System{Servers: 2, Lambda: 50}})
	var ae *api.Error
	if !errors.As(err, &ae) {
		t.Fatalf("unstable error %v does not unwrap to *api.Error", err)
	}
	if ae.Code != api.CodeUnstableSystem || ae.HTTPStatus() != http.StatusUnprocessableEntity {
		t.Errorf("code = %s, want unstable_system", ae.Code)
	}

	_, err = c.Solve(ctx, api.SolveRequest{System: api.System{Servers: 3, Lambda: 1}, Method: "quantum"})
	ae = nil
	if !errors.As(err, &ae) || ae.Code != api.CodeInvalidArgument || ae.Field != "method" {
		t.Errorf("invalid method: got %v", err)
	}

	_, err = c.Optimize(ctx, api.OptimizeRequest{System: api.System{Lambda: 8}, TargetResponse: 0.0001})
	ae = nil
	if !errors.As(err, &ae) || ae.Code != api.CodeUnsatisfiable {
		t.Errorf("unsatisfiable: got %v", err)
	}
}

func TestClientSweepStream(t *testing.T) {
	ts := stubServer(t)
	c := New(ts.URL)
	var got []api.SweepPoint
	err := c.SweepStream(context.Background(),
		api.SweepRequest{System: api.System{Servers: 10}, Param: api.ParamLambda, Values: []float64{1, 2, 3, 4}},
		func(pt api.SweepPoint) error {
			got = append(got, pt)
			return nil
		})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 4 {
		t.Fatalf("%d points, want 4", len(got))
	}
	for i, pt := range got {
		if pt.Index != i || pt.Perf == nil || pt.Perf.MeanJobs != pt.Value*2 {
			t.Errorf("point %d corrupted: %+v", i, pt)
		}
	}

	// A validation failure surfaces as a typed error, not a stream.
	err = c.SweepStream(context.Background(),
		api.SweepRequest{System: api.System{Servers: 10}, Param: "mu", Values: []float64{1}},
		func(api.SweepPoint) error { t.Error("callback on failed stream"); return nil })
	var ae *api.Error
	if !errors.As(err, &ae) || ae.Code != api.CodeInvalidArgument {
		t.Errorf("stream validation error: got %v", err)
	}

	// A callback error abandons the stream.
	sentinel := errors.New("enough")
	calls := 0
	err = c.SweepStream(context.Background(),
		api.SweepRequest{System: api.System{Servers: 10}, Param: api.ParamLambda, Values: []float64{1, 2, 3, 4}},
		func(api.SweepPoint) error { calls++; return sentinel })
	if !errors.Is(err, sentinel) || calls != 1 {
		t.Errorf("callback error: err=%v calls=%d", err, calls)
	}
}

func TestClientSweepStreamDetectsTruncation(t *testing.T) {
	// A server that dies mid-stream (timeout, crash, cancellation) leaves
	// a clean EOF behind the 200 — the SDK must refuse to pass that off
	// as a complete sweep.
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", api.ContentTypeNDJSON)
		enc := json.NewEncoder(w)
		for i := 0; i < 2; i++ { // only 2 of the 4 requested points
			enc.Encode(api.SweepPoint{Index: i, Value: float64(i), Perf: &api.Performance{}}) //nolint:errcheck
		}
	}))
	defer srv.Close()
	c := New(srv.URL, WithRetries(0))
	seen := 0
	err := c.SweepStream(context.Background(),
		api.SweepRequest{System: api.System{Servers: 10}, Param: api.ParamLambda, Values: []float64{1, 2, 3, 4}},
		func(api.SweepPoint) error { seen++; return nil })
	if err == nil || !strings.Contains(err.Error(), "truncated") {
		t.Fatalf("truncated stream returned %v, want a truncation error", err)
	}
	if seen != 2 {
		t.Errorf("callback saw %d points, want the 2 that arrived", seen)
	}
}

func TestClientRetriesOn5xx(t *testing.T) {
	var hits atomic.Int32
	flaky := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if hits.Add(1) <= 2 {
			http.Error(w, "worker crashed", http.StatusBadGateway)
			return
		}
		json.NewEncoder(w).Encode(api.StatsResponse{Workers: 1}) //nolint:errcheck
	}))
	defer flaky.Close()
	c := New(flaky.URL, WithRetries(3), WithBackoff(time.Millisecond))
	st, err := c.Stats(context.Background())
	if err != nil {
		t.Fatalf("retries did not recover: %v", err)
	}
	if st.Workers != 1 || hits.Load() != 3 {
		t.Errorf("workers=%d after %d attempts", st.Workers, hits.Load())
	}
}

func TestClientRetriesExhausted(t *testing.T) {
	var hits atomic.Int32
	down := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		http.Error(w, "still down", http.StatusServiceUnavailable)
	}))
	defer down.Close()
	c := New(down.URL, WithRetries(2), WithBackoff(time.Millisecond))
	_, err := c.Stats(context.Background())
	var ae *api.Error
	if !errors.As(err, &ae) || ae.Code != api.CodeNodeUnavailable {
		t.Fatalf("exhausted retries: got %v, want node_unavailable (the 503 fallback code)", err)
	}
	if hits.Load() != 3 {
		t.Errorf("%d attempts, want 3 (1 + 2 retries)", hits.Load())
	}
}

func TestClientDoesNotRetry4xx(t *testing.T) {
	var hits atomic.Int32
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		w.WriteHeader(http.StatusBadRequest)
		json.NewEncoder(w).Encode(api.ErrorEnvelope{Error: api.InvalidArgument("lambda", "bad")}) //nolint:errcheck
	}))
	defer srv.Close()
	c := New(srv.URL, WithRetries(5), WithBackoff(time.Millisecond))
	_, err := c.Solve(context.Background(), api.SolveRequest{System: api.System{Servers: 1, Lambda: 1}})
	var ae *api.Error
	if !errors.As(err, &ae) || ae.Code != api.CodeInvalidArgument {
		t.Fatalf("got %v", err)
	}
	if hits.Load() != 1 {
		t.Errorf("4xx retried %d times", hits.Load())
	}
}

func TestClientErrorMessageCarriesRequestID(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set(api.HeaderRequestID, "req-77")
		w.WriteHeader(http.StatusUnprocessableEntity)
		json.NewEncoder(w).Encode(api.ErrorEnvelope{ //nolint:errcheck
			Error:     &api.Error{Code: api.CodeUnstableSystem, Message: "unstable"},
			RequestID: "req-77",
		})
	}))
	defer srv.Close()
	c := New(srv.URL, WithRetries(0))
	_, err := c.Solve(context.Background(), api.SolveRequest{System: api.System{Servers: 1, Lambda: 99}})
	if err == nil || !strings.Contains(err.Error(), "req-77") {
		t.Errorf("error %q does not mention the request id", err)
	}
}

func TestClientHonoursContext(t *testing.T) {
	stall := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		<-r.Context().Done()
	}))
	defer stall.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	c := New(stall.URL, WithRetries(0))
	if _, err := c.Stats(ctx); err == nil {
		t.Fatal("expected a context error")
	}
}
