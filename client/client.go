// Package client is the Go SDK for the mus-serve evaluation daemon: a
// thin, typed wrapper over the versioned wire contract of package api.
// Every endpoint has one context-aware method, every failure unwraps to a
// structured *api.Error via errors.As, transient 5xx and transport
// failures are retried with exponential backoff, and one underlying
// http.Client reuses connections across calls.
//
//	c := client.New("http://localhost:8350")
//	resp, err := c.Solve(ctx, api.SolveRequest{
//	    System: api.System{Servers: 12, Lambda: 8},
//	})
//	var ae *api.Error
//	if errors.As(err, &ae) && ae.Code == api.CodeUnstableSystem {
//	    // add servers and retry
//	}
//
// Long sweeps stream: SweepStream asks the server for NDJSON and invokes
// a callback per grid point as soon as it is solved, so a 10k-point sweep
// yields its first result in milliseconds.
package client

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"

	"repro/api"
	"repro/internal/obs/trace"
)

// DefaultRetries is the number of times a call is re-sent after a 5xx or
// transport failure when WithRetries is not used.
const DefaultRetries = 2

// DefaultBackoff is the base delay of the exponential retry backoff when
// WithBackoff is not used; attempt k sleeps backoff·2ᵏ.
const DefaultBackoff = 100 * time.Millisecond

// MaxRetryAfter caps how long a server-supplied Retry-After header can
// make the client wait before one retry; larger values are clamped so a
// misconfigured server cannot park callers for minutes.
const MaxRetryAfter = 30 * time.Second

// Client talks to one mus-serve daemon. It is safe for concurrent use;
// create it once and share it so connections are reused.
type Client struct {
	baseURL string
	httpc   *http.Client
	retries int
	backoff time.Duration
	header  http.Header
	// sleep waits out one backoff delay (retries, job polling), returning
	// early with ctx.Err() on cancelation. Tests substitute a recording
	// fake so backoff behaviour is asserted without real time passing.
	sleep func(ctx context.Context, d time.Duration) error
}

// realSleep is the production sleep: a timer raced against the context.
func realSleep(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Option customises a Client at construction.
type Option func(*Client)

// WithHTTPClient substitutes the underlying HTTP client (timeouts,
// transport limits, instrumentation). The default is a dedicated client
// with connection reuse and no global timeout — per-call deadlines come
// from the context.
func WithHTTPClient(h *http.Client) Option { return func(c *Client) { c.httpc = h } }

// WithRetries sets how many times a call is re-sent after a retryable
// failure (HTTP 5xx or a transport error); 0 disables retries.
func WithRetries(n int) Option { return func(c *Client) { c.retries = n } }

// WithBackoff sets the base delay of the exponential retry backoff.
func WithBackoff(d time.Duration) Option { return func(c *Client) { c.backoff = d } }

// WithHeader attaches a fixed header to every request the client sends —
// how the cluster forwarding proxy marks one-hop requests
// (api.HeaderForwarded) and how callers pass auth or tracing headers.
func WithHeader(key, value string) Option {
	return func(c *Client) {
		if c.header == nil {
			c.header = make(http.Header)
		}
		c.header.Set(key, value)
	}
}

// New builds a client for the daemon at baseURL (e.g.
// "http://localhost:8350"). A trailing slash is tolerated.
func New(baseURL string, opts ...Option) *Client {
	c := &Client{
		baseURL: strings.TrimRight(baseURL, "/"),
		httpc:   &http.Client{},
		retries: DefaultRetries,
		backoff: DefaultBackoff,
		sleep:   realSleep,
	}
	for _, o := range opts {
		o(c)
	}
	return c
}

// Solve evaluates one configuration (POST /v1/solve).
func (c *Client) Solve(ctx context.Context, req api.SolveRequest) (*api.SolveResponse, error) {
	var resp api.SolveResponse
	if err := c.call(ctx, http.MethodPost, api.PathSolve, req, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// Sweep evaluates a parameter grid and returns the whole response at once
// (POST /v1/sweep). For long grids prefer SweepStream.
func (c *Client) Sweep(ctx context.Context, req api.SweepRequest) (*api.SweepResponse, error) {
	var resp api.SweepResponse
	if err := c.call(ctx, http.MethodPost, api.PathSweep, req, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// SweepStream evaluates a parameter grid as an NDJSON stream
// (POST /v1/sweep with Accept: application/x-ndjson): fn is invoked once
// per grid point, in grid order, as soon as the server solves it.
// Returning an error from fn abandons the stream (and the server's
// remaining work) and returns that error. Per-point failures arrive in
// SweepPoint.Error and do not stop the stream.
func (c *Client) SweepStream(ctx context.Context, req api.SweepRequest, fn func(api.SweepPoint) error) error {
	resp, err := c.send(ctx, http.MethodPost, api.PathSweep, req, api.ContentTypeNDJSON)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return c.errorFrom(resp, api.PathSweep)
	}
	received, err := decodeSweepPoints(resp.Body, fn)
	if err != nil {
		var cb errCallback
		if errors.As(err, &cb) {
			return cb.err // the caller's own error, verbatim
		}
		return fmt.Errorf("client: POST %s: %w", api.PathSweep, err)
	}
	// The stream carries its 200 before any point is solved, so a
	// server-side failure (timeout, cancellation, crash) can only show up
	// as truncation: fewer lines than grid points is an error, never a
	// silent partial result.
	if received < len(req.Values) {
		return fmt.Errorf("client: POST %s: stream truncated after %d of %d points", api.PathSweep, received, len(req.Values))
	}
	return nil
}

// errCallback marks an error as coming from the caller's per-point
// function, so stream decoders can return it verbatim.
type errCallback struct{ err error }

func (e errCallback) Error() string { return e.err.Error() }
func (e errCallback) Unwrap() error { return e.err }

// decodeSweepPoints parses an NDJSON stream of api.SweepPoint frames —
// one JSON object per line, blank lines tolerated, lines over 1 MiB
// rejected — invoking fn per frame and returning how many frames were
// decoded. A callback error aborts the scan and is returned verbatim;
// decode and read failures are wrapped. Both SweepStream and
// JobSweepPartial parse through here, and the fuzz harness targets it
// directly.
func decodeSweepPoints(r io.Reader, fn func(api.SweepPoint) error) (received int, err error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var pt api.SweepPoint
		if err := json.Unmarshal(line, &pt); err != nil {
			return received, fmt.Errorf("decode stream line: %w", err)
		}
		received++
		if err := fn(pt); err != nil {
			return received, errCallback{err}
		}
	}
	if err := sc.Err(); err != nil {
		return received, fmt.Errorf("read stream: %w", err)
	}
	return received, nil
}

// Optimize answers a provisioning question (POST /v1/optimize).
func (c *Client) Optimize(ctx context.Context, req api.OptimizeRequest) (*api.OptimizeResponse, error) {
	var resp api.OptimizeResponse
	if err := c.call(ctx, http.MethodPost, api.PathOptimize, req, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// Simulate runs a replicated simulation with confidence intervals
// (POST /v1/simulate).
func (c *Client) Simulate(ctx context.Context, req api.SimulateRequest) (*api.SimulateResponse, error) {
	var resp api.SimulateResponse
	if err := c.call(ctx, http.MethodPost, api.PathSimulate, req, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// Stats fetches the engine counters (GET /v1/stats).
func (c *Client) Stats(ctx context.Context) (*api.StatsResponse, error) {
	var resp api.StatsResponse
	if err := c.call(ctx, http.MethodGet, api.PathStats, nil, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// Health probes daemon readiness (GET /v1/healthz).
func (c *Client) Health(ctx context.Context) (*api.HealthResponse, error) {
	var resp api.HealthResponse
	if err := c.call(ctx, http.MethodGet, api.PathHealthz, nil, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// call sends one JSON request and decodes a JSON response, translating
// non-2xx statuses into *api.Error values.
func (c *Client) call(ctx context.Context, method, path string, in, out any) error {
	resp, err := c.send(ctx, method, path, in, api.ContentTypeJSON)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	// Any 2xx carries a decodable body — job submissions answer 202.
	if resp.StatusCode/100 != 2 {
		return c.errorFrom(resp, path)
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		return fmt.Errorf("client: %s %s: decode response: %w", method, path, err)
	}
	return nil
}

// send issues the request with retries: a transport failure or a 5xx
// status is retried up to c.retries times with exponential backoff, the
// request body re-sent from scratch each attempt. A Retry-After header
// (whole seconds) on a 429 or 503 replaces the exponential delay for that
// retry — and is the only way a 429 is retried at all: without the
// server's explicit invitation, backpressure rejections keep failing
// fast. Other responses below 500 (including structured 4xx errors)
// return immediately.
func (c *Client) send(ctx context.Context, method, path string, in any, accept string) (*http.Response, error) {
	var body []byte
	if in != nil {
		var err error
		if body, err = json.Marshal(in); err != nil {
			return nil, fmt.Errorf("client: %s %s: encode request: %w", method, path, err)
		}
	}
	var lastErr error
	for attempt := 0; ; attempt++ {
		req, err := http.NewRequestWithContext(ctx, method, c.baseURL+path, bytes.NewReader(body))
		if err != nil {
			return nil, fmt.Errorf("client: %s %s: %w", method, path, err)
		}
		for k, vs := range c.header {
			req.Header[k] = vs
		}
		// A correlation ID on the context (api.ContextWithRequestID) rides
		// out as X-Request-ID — how a cluster forward or scatter leg shares
		// its origin's trace ID — unless a fixed header already set one.
		if id := api.RequestIDFrom(ctx); id != "" && req.Header.Get(api.HeaderRequestID) == "" {
			req.Header.Set(api.HeaderRequestID, id)
		}
		// A live span on the context rides out as a W3C traceparent, so
		// the receiving node's root span joins the caller's trace.
		if sc := trace.SpanContextFrom(ctx); sc.Valid() && req.Header.Get(api.HeaderTraceparent) == "" {
			req.Header.Set(api.HeaderTraceparent, sc.Traceparent())
		}
		if in != nil {
			req.Header.Set("Content-Type", api.ContentTypeJSON)
		}
		if accept != "" {
			req.Header.Set("Accept", accept)
		}
		resp, err := c.httpc.Do(req)
		delay := c.backoff << attempt
		switch {
		case err != nil:
			lastErr = fmt.Errorf("client: %s %s: %w", method, path, err)
		case resp.StatusCode >= http.StatusInternalServerError,
			resp.StatusCode == http.StatusTooManyRequests:
			var hinted time.Duration
			var ok bool
			// The hint is honored only where the contract says so — 429 and
			// 503; a proxy-stamped Retry-After on a 502/504 must not stretch
			// the fast exponential schedule.
			if resp.StatusCode == http.StatusTooManyRequests || resp.StatusCode == http.StatusServiceUnavailable {
				hinted, ok = retryAfter(resp)
			}
			if resp.StatusCode == http.StatusTooManyRequests && !ok {
				return resp, nil // no server hint: keep the fast-fail backpressure contract
			}
			if attempt >= c.retries {
				return resp, nil // caller renders the final failure as *api.Error
			}
			io.Copy(io.Discard, io.LimitReader(resp.Body, 64<<10)) //nolint:errcheck
			resp.Body.Close()
			if ok {
				delay = hinted
			}
			lastErr = nil
		default:
			return resp, nil
		}
		if attempt >= c.retries {
			return nil, lastErr
		}
		if err := c.sleep(ctx, delay); err != nil {
			if lastErr != nil {
				return nil, lastErr
			}
			return nil, fmt.Errorf("client: %s %s: %w", method, path, err)
		}
	}
}

// retryAfter reads a response's Retry-After header in either RFC shape —
// delay-seconds, or an HTTP-date (which proxies are allowed to normalize
// to) — clamped to [0, MaxRetryAfter]. Garbage is ignored (the
// exponential backoff applies instead).
func retryAfter(resp *http.Response) (time.Duration, bool) {
	v := strings.TrimSpace(resp.Header.Get("Retry-After"))
	if v == "" {
		return 0, false
	}
	var d time.Duration
	if secs, err := strconv.Atoi(v); err == nil {
		if secs < 0 {
			return 0, false
		}
		// Clamp before multiplying: a huge value would overflow the
		// Duration into a negative and dodge the cap below.
		if secs > int(MaxRetryAfter/time.Second) {
			secs = int(MaxRetryAfter / time.Second)
		}
		d = time.Duration(secs) * time.Second
	} else if at, err := http.ParseTime(v); err == nil {
		d = time.Until(at)
		if d < 0 {
			d = 0 // the moment already passed: retry now
		}
	} else {
		return 0, false
	}
	if d > MaxRetryAfter {
		d = MaxRetryAfter
	}
	return d, true
}

// errorFrom turns a non-2xx response into an error wrapping *api.Error,
// so callers recover the code with errors.As. The response body is
// consumed.
func (c *Client) errorFrom(resp *http.Response, path string) error {
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	reqID := resp.Header.Get(api.HeaderRequestID)
	var env api.ErrorEnvelope
	if err := json.Unmarshal(body, &env); err == nil && env.Error != nil && env.Error.Code != "" {
		if env.RequestID != "" {
			reqID = env.RequestID
		}
		return c.wrapError(resp.Request.Method, path, reqID, env.Error)
	}
	msg := strings.TrimSpace(string(body))
	if msg == "" {
		msg = resp.Status
	}
	return c.wrapError(resp.Request.Method, path, reqID,
		&api.Error{Code: api.CodeForStatus(resp.StatusCode), Message: msg})
}

// wrapError attaches call context (and the request ID when known) while
// keeping the *api.Error reachable through errors.As.
func (c *Client) wrapError(method, path, reqID string, ae *api.Error) error {
	if reqID != "" {
		return fmt.Errorf("client: %s %s (request %s): %w", method, path, reqID, ae)
	}
	return fmt.Errorf("client: %s %s: %w", method, path, ae)
}
