package client

import (
	"context"
	"net/http"

	"repro/api"
)

// Plan asks a capacity-planning question about the serving tier
// (POST /v1/plan). With req.Measured set the server fills the rates from
// its own fitted self-model — cluster-aggregated when clustering is
// enabled — so the request only needs an objective:
//
//	resp, err := c.Plan(ctx, api.PlanRequest{
//	    Measured:    true,
//	    HoldingCost: 1, ServerCost: 0.5,
//	})
//	// resp.Servers is the cost-optimal fleet size for the measured load.
func (c *Client) Plan(ctx context.Context, req api.PlanRequest) (*api.PlanResponse, error) {
	var resp api.PlanResponse
	if err := c.call(ctx, http.MethodPost, api.PathPlan, req, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}
