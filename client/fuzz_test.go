package client

import (
	"bytes"
	"errors"
	"strings"
	"testing"

	"repro/api"
)

// FuzzDecodeSweepPoints throws arbitrary byte streams at the NDJSON frame
// parser shared by SweepStream and JobSweepPartial. Invariants: no panic,
// the callback fires exactly as many times as the returned frame count,
// decoding stops at the first malformed frame, and pathological inputs —
// truncated frames, blank lines, oversized lines — come back as errors,
// never as silently swallowed data.
func FuzzDecodeSweepPoints(f *testing.F) {
	f.Add([]byte(`{"index":0,"value":1,"perf":{"mean_jobs":2,"mean_response":1,"tail_decay":0.5,"load":0.4}}` + "\n"))
	f.Add([]byte("{\"index\":0,\"value\":1}\n\n{\"index\":1,\"value\":2}\n"))
	f.Add([]byte("\n\n\n"))
	f.Add([]byte(`{"index":0,"value":1,"error":"unstable"}`))
	f.Add([]byte(`{"index":0,`)) // truncated frame
	f.Add([]byte(`not json at all`))
	f.Add([]byte("{}\r\n{}\r\n")) // CRLF line endings
	f.Add(bytes.Repeat([]byte("x"), 4096))
	f.Fuzz(func(t *testing.T, data []byte) {
		calls := 0
		n, err := decodeSweepPoints(bytes.NewReader(data), func(api.SweepPoint) error {
			calls++
			return nil
		})
		if n != calls {
			t.Fatalf("returned %d frames but invoked the callback %d times", n, calls)
		}
		if err != nil {
			var cb errCallback
			if errors.As(err, &cb) {
				t.Fatalf("callback error surfaced without the callback failing: %v", err)
			}
		}
	})
}

// TestDecodeSweepPointsOversizedLine pins the parser's bound: a line past
// the 1 MiB buffer is an explicit read error, not a hang or a panic.
func TestDecodeSweepPointsOversizedLine(t *testing.T) {
	huge := `{"index":0,"value":1,"error":"` + strings.Repeat("x", 2<<20) + `"}`
	n, err := decodeSweepPoints(strings.NewReader(huge), func(api.SweepPoint) error { return nil })
	if err == nil || n != 0 {
		t.Fatalf("oversized line: n=%d, err=%v", n, err)
	}
	if !strings.Contains(err.Error(), "read stream") {
		t.Errorf("oversized line error %v not classified as a read failure", err)
	}
}

// TestDecodeSweepPointsCallbackErrorVerbatim pins that a caller's error
// aborts the scan and is recoverable verbatim via errCallback.
func TestDecodeSweepPointsCallbackErrorVerbatim(t *testing.T) {
	sentinel := errors.New("stop here")
	body := "{\"index\":0,\"value\":1}\n{\"index\":1,\"value\":2}\n"
	n, err := decodeSweepPoints(strings.NewReader(body), func(pt api.SweepPoint) error {
		if pt.Index == 1 {
			return sentinel
		}
		return nil
	})
	if n != 2 {
		t.Fatalf("decoded %d frames, want 2", n)
	}
	var cb errCallback
	if !errors.As(err, &cb) || !errors.Is(err, sentinel) {
		t.Fatalf("callback error not recoverable: %v", err)
	}
}
