package client

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"repro/api"
)

// recordSleeper replaces the client's real backoff sleep: it records every
// requested delay and returns instantly, so retry pacing is asserted
// deterministically, without real time passing.
type recordSleeper struct {
	delays []time.Duration
	// cancel, when set, is invoked on the first sleep — simulating a
	// caller abandoning the context mid-backoff.
	cancel context.CancelFunc
}

func (r *recordSleeper) sleep(ctx context.Context, d time.Duration) error {
	r.delays = append(r.delays, d)
	if r.cancel != nil {
		r.cancel()
	}
	return ctx.Err()
}

func TestRetryBackoffGrowsExponentially(t *testing.T) {
	var hits atomic.Int32
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if hits.Add(1) <= 3 { // three 5xx failures, then success
			http.Error(w, "boom", http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", api.ContentTypeJSON)
		w.Write([]byte(`{"status":"ok","workers":1}`)) //nolint:errcheck
	}))
	defer srv.Close()
	rec := &recordSleeper{}
	c := New(srv.URL, WithRetries(3), WithBackoff(10*time.Millisecond))
	c.sleep = rec.sleep
	resp, err := c.Health(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if resp.Status != "ok" {
		t.Fatalf("response %+v", resp)
	}
	if got := hits.Load(); got != 4 {
		t.Errorf("server saw %d attempts, want 4 (three 5xx + success)", got)
	}
	want := []time.Duration{10 * time.Millisecond, 20 * time.Millisecond, 40 * time.Millisecond}
	if len(rec.delays) != len(want) {
		t.Fatalf("slept %v, want %v", rec.delays, want)
	}
	for i, d := range want {
		if rec.delays[i] != d {
			t.Errorf("backoff %d = %v, want %v (delays must double)", i, rec.delays[i], d)
		}
	}
}

func TestRetryStopsWhenContextCancelledDuringBackoff(t *testing.T) {
	var hits atomic.Int32
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		http.Error(w, "boom", http.StatusBadGateway)
	}))
	defer srv.Close()
	ctx, cancel := context.WithCancel(context.Background())
	rec := &recordSleeper{cancel: cancel}
	c := New(srv.URL, WithRetries(5), WithBackoff(time.Millisecond))
	c.sleep = rec.sleep
	_, err := c.Health(ctx)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	// Exactly one request went out: the cancelation landed during the
	// first backoff and no further attempt was sent.
	if got := hits.Load(); got != 1 {
		t.Errorf("server saw %d attempts, want 1", got)
	}
	if len(rec.delays) != 1 {
		t.Errorf("slept %v, want exactly one backoff", rec.delays)
	}
}

func TestWaitJobPollsWithGrowingBackoff(t *testing.T) {
	var polls atomic.Int32
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		st := api.JobStatus{ID: "j1", Kind: api.JobKindSweep, State: api.JobStateRunning,
			Progress: api.JobProgress{Total: 10, Completed: int(polls.Load())}}
		if polls.Add(1) >= 5 {
			st.State = api.JobStateDone
			st.Progress.Completed = 10
		}
		writeTestJSON(t, w, st)
	}))
	defer srv.Close()
	rec := &recordSleeper{}
	c := New(srv.URL)
	c.sleep = rec.sleep
	var observed []string
	final, err := c.WaitJob(context.Background(), "j1", func(st api.JobStatus) {
		observed = append(observed, st.State)
	})
	if err != nil {
		t.Fatal(err)
	}
	if final.State != api.JobStateDone {
		t.Fatalf("final state %s", final.State)
	}
	if len(observed) != 5 || observed[0] != api.JobStateRunning || observed[4] != api.JobStateDone {
		t.Errorf("observed states %v", observed)
	}
	// Four sleeps between five polls, each 1.5× the last.
	want := []time.Duration{
		DefaultPollInterval,
		DefaultPollInterval * 3 / 2,
		DefaultPollInterval * 3 / 2 * 3 / 2,
		DefaultPollInterval * 3 / 2 * 3 / 2 * 3 / 2,
	}
	if len(rec.delays) != len(want) {
		t.Fatalf("slept %v, want %v", rec.delays, want)
	}
	for i, d := range want {
		if rec.delays[i] != d {
			t.Errorf("poll delay %d = %v, want %v", i, rec.delays[i], d)
		}
	}
}

func TestWaitJobHonoursContextDuringPollSleep(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		writeTestJSON(t, w, api.JobStatus{ID: "j1", State: api.JobStateRunning})
	}))
	defer srv.Close()
	ctx, cancel := context.WithCancel(context.Background())
	rec := &recordSleeper{cancel: cancel}
	c := New(srv.URL)
	c.sleep = rec.sleep
	if _, err := c.WaitJob(ctx, "j1", nil); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestRunJobSurfacesFailedJobError(t *testing.T) {
	mux := http.NewServeMux()
	mux.HandleFunc("POST "+api.PathJobs, func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusAccepted)
		writeTestJSON(t, w, api.JobStatus{ID: "j1", Kind: api.JobKindSimulate, State: api.JobStateQueued})
	})
	mux.HandleFunc("GET "+api.PathJobs+"/{id}", func(w http.ResponseWriter, r *http.Request) {
		writeTestJSON(t, w, api.JobStatus{ID: "j1", Kind: api.JobKindSimulate, State: api.JobStateFailed,
			Error: &api.Error{Code: api.CodeUnstableSystem, Message: "unstable"}})
	})
	srv := httptest.NewServer(mux)
	defer srv.Close()
	c := New(srv.URL)
	c.sleep = (&recordSleeper{}).sleep
	var observed []string
	_, err := c.RunJob(context.Background(), api.NewSimulateJob(api.SimulateRequest{System: api.System{Servers: 1, Lambda: 1}}),
		func(js api.JobStatus) { observed = append(observed, js.State) })
	var ae *api.Error
	if !errors.As(err, &ae) || ae.Code != api.CodeUnstableSystem {
		t.Fatalf("RunJob error %v does not unwrap to the job's recorded failure", err)
	}
	// fn observed the submission status first, then the terminal poll.
	if len(observed) != 2 || observed[0] != api.JobStateQueued || observed[1] != api.JobStateFailed {
		t.Errorf("observed states %v", observed)
	}
}

func writeTestJSON(t *testing.T, w http.ResponseWriter, v any) {
	t.Helper()
	w.Header().Set("Content-Type", api.ContentTypeJSON)
	if err := json.NewEncoder(w).Encode(v); err != nil {
		t.Errorf("encode: %v", err)
	}
}
