package client

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"repro/api"
)

// recordSleeper replaces the client's real backoff sleep: it records every
// requested delay and returns instantly, so retry pacing is asserted
// deterministically, without real time passing.
type recordSleeper struct {
	delays []time.Duration
	// cancel, when set, is invoked on the first sleep — simulating a
	// caller abandoning the context mid-backoff.
	cancel context.CancelFunc
}

func (r *recordSleeper) sleep(ctx context.Context, d time.Duration) error {
	r.delays = append(r.delays, d)
	if r.cancel != nil {
		r.cancel()
	}
	return ctx.Err()
}

func TestRetryBackoffGrowsExponentially(t *testing.T) {
	var hits atomic.Int32
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if hits.Add(1) <= 3 { // three 5xx failures, then success
			http.Error(w, "boom", http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", api.ContentTypeJSON)
		w.Write([]byte(`{"status":"ok","workers":1}`)) //nolint:errcheck
	}))
	defer srv.Close()
	rec := &recordSleeper{}
	c := New(srv.URL, WithRetries(3), WithBackoff(10*time.Millisecond))
	c.sleep = rec.sleep
	resp, err := c.Health(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if resp.Status != "ok" {
		t.Fatalf("response %+v", resp)
	}
	if got := hits.Load(); got != 4 {
		t.Errorf("server saw %d attempts, want 4 (three 5xx + success)", got)
	}
	want := []time.Duration{10 * time.Millisecond, 20 * time.Millisecond, 40 * time.Millisecond}
	if len(rec.delays) != len(want) {
		t.Fatalf("slept %v, want %v", rec.delays, want)
	}
	for i, d := range want {
		if rec.delays[i] != d {
			t.Errorf("backoff %d = %v, want %v (delays must double)", i, rec.delays[i], d)
		}
	}
}

// TestRetryHonoursRetryAfterSeconds pins the Retry-After contract: a 503
// carrying "Retry-After: 3" makes the client wait exactly three seconds —
// the server's hint, not the exponential schedule — before retrying, and
// subsequent hintless 5xx failures fall back to exponential backoff.
func TestRetryHonoursRetryAfterSeconds(t *testing.T) {
	var hits atomic.Int32
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch hits.Add(1) {
		case 1:
			w.Header().Set("Retry-After", "3")
			http.Error(w, "draining", http.StatusServiceUnavailable)
		case 2:
			http.Error(w, "boom", http.StatusInternalServerError) // no hint
		default:
			w.Header().Set("Content-Type", api.ContentTypeJSON)
			w.Write([]byte(`{"status":"ok","workers":1}`)) //nolint:errcheck
		}
	}))
	defer srv.Close()
	rec := &recordSleeper{}
	c := New(srv.URL, WithRetries(3), WithBackoff(10*time.Millisecond))
	c.sleep = rec.sleep
	if _, err := c.Health(context.Background()); err != nil {
		t.Fatal(err)
	}
	if got := hits.Load(); got != 3 {
		t.Errorf("server saw %d attempts, want 3", got)
	}
	// Sleep 1 is the server's 3 s hint; sleep 2 is the exponential delay
	// for attempt index 1 (backoff·2¹), the hint never feeding the curve.
	want := []time.Duration{3 * time.Second, 20 * time.Millisecond}
	if len(rec.delays) != len(want) {
		t.Fatalf("slept %v, want %v", rec.delays, want)
	}
	for i, d := range want {
		if rec.delays[i] != d {
			t.Errorf("delay %d = %v, want %v", i, rec.delays[i], d)
		}
	}
}

// TestRetryAfterEnables429Retry: a 429 is normally a fast-fail
// (backpressure), but a server that names a Retry-After delay is inviting
// exactly one more attempt after that wait.
func TestRetryAfterEnables429Retry(t *testing.T) {
	var hits atomic.Int32
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if hits.Add(1) == 1 {
			w.Header().Set("Retry-After", "2")
			http.Error(w, "queue full", http.StatusTooManyRequests)
			return
		}
		w.Header().Set("Content-Type", api.ContentTypeJSON)
		w.Write([]byte(`{"status":"ok","workers":1}`)) //nolint:errcheck
	}))
	defer srv.Close()
	rec := &recordSleeper{}
	c := New(srv.URL, WithRetries(2))
	c.sleep = rec.sleep
	if _, err := c.Health(context.Background()); err != nil {
		t.Fatal(err)
	}
	if got := hits.Load(); got != 2 {
		t.Errorf("server saw %d attempts, want 2", got)
	}
	if len(rec.delays) != 1 || rec.delays[0] != 2*time.Second {
		t.Errorf("slept %v, want exactly [2s]", rec.delays)
	}
}

// TestRetryAfterAbsent429FailsFast pins the unchanged backpressure
// contract: a hintless 429 surfaces immediately as queue_full with no
// sleeps and no second attempt.
func TestRetryAfterAbsent429FailsFast(t *testing.T) {
	var hits atomic.Int32
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		w.Header().Set("Content-Type", api.ContentTypeJSON)
		w.WriteHeader(http.StatusTooManyRequests)
		writeTestJSON(t, w, api.ErrorEnvelope{Error: api.QueueFull(8)})
	}))
	defer srv.Close()
	rec := &recordSleeper{}
	c := New(srv.URL, WithRetries(5))
	c.sleep = rec.sleep
	_, err := c.Health(context.Background())
	var ae *api.Error
	if !errors.As(err, &ae) || ae.Code != api.CodeQueueFull {
		t.Fatalf("err = %v, want queue_full", err)
	}
	if got := hits.Load(); got != 1 {
		t.Errorf("server saw %d attempts, want 1 (fast fail)", got)
	}
	if len(rec.delays) != 0 {
		t.Errorf("slept %v, want none", rec.delays)
	}
}

// TestRetryAfterIgnoredOn502: the hint is honored only on 429/503 — a
// proxy-stamped Retry-After on a 502 must not stretch the exponential
// schedule.
func TestRetryAfterIgnoredOn502(t *testing.T) {
	var hits atomic.Int32
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if hits.Add(1) == 1 {
			w.Header().Set("Retry-After", "3600")
			http.Error(w, "bad gateway", http.StatusBadGateway)
			return
		}
		w.Header().Set("Content-Type", api.ContentTypeJSON)
		w.Write([]byte(`{"status":"ok","workers":1}`)) //nolint:errcheck
	}))
	defer srv.Close()
	rec := &recordSleeper{}
	c := New(srv.URL, WithRetries(1), WithBackoff(10*time.Millisecond))
	c.sleep = rec.sleep
	if _, err := c.Health(context.Background()); err != nil {
		t.Fatal(err)
	}
	if len(rec.delays) != 1 || rec.delays[0] != 10*time.Millisecond {
		t.Errorf("slept %v, want the exponential [10ms] (502 hint ignored)", rec.delays)
	}
}

// TestRetryAfterClampAndGarbage: oversized hints clamp to MaxRetryAfter;
// unparseable ones fall back to the exponential schedule.
func TestRetryAfterClampAndGarbage(t *testing.T) {
	for _, tc := range []struct {
		header string
		want   time.Duration
	}{
		{"86400", MaxRetryAfter},                         // clamped
		{"10000000000", MaxRetryAfter},                   // would overflow Duration → clamped, not negative
		{"Wed, 21 Oct 2100 07:28:00 GMT", MaxRetryAfter}, // far-future date form → clamped
		{"Wed, 21 Oct 2015 07:28:00 GMT", 0},             // past date form → retry now
		{"yesterday-ish", 10 * time.Millisecond},         // garbage ignored → exponential
		{"-5", 10 * time.Millisecond},                    // negative ignored → exponential
	} {
		var hits atomic.Int32
		srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if hits.Add(1) == 1 {
				w.Header().Set("Retry-After", tc.header)
				http.Error(w, "unavailable", http.StatusServiceUnavailable)
				return
			}
			w.Header().Set("Content-Type", api.ContentTypeJSON)
			w.Write([]byte(`{"status":"ok","workers":1}`)) //nolint:errcheck
		}))
		rec := &recordSleeper{}
		c := New(srv.URL, WithRetries(1), WithBackoff(10*time.Millisecond))
		c.sleep = rec.sleep
		if _, err := c.Health(context.Background()); err != nil {
			t.Fatalf("Retry-After %q: %v", tc.header, err)
		}
		if len(rec.delays) != 1 || rec.delays[0] != tc.want {
			t.Errorf("Retry-After %q: slept %v, want [%v]", tc.header, rec.delays, tc.want)
		}
		srv.Close()
	}
}

func TestRetryStopsWhenContextCancelledDuringBackoff(t *testing.T) {
	var hits atomic.Int32
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		http.Error(w, "boom", http.StatusBadGateway)
	}))
	defer srv.Close()
	ctx, cancel := context.WithCancel(context.Background())
	rec := &recordSleeper{cancel: cancel}
	c := New(srv.URL, WithRetries(5), WithBackoff(time.Millisecond))
	c.sleep = rec.sleep
	_, err := c.Health(ctx)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	// Exactly one request went out: the cancelation landed during the
	// first backoff and no further attempt was sent.
	if got := hits.Load(); got != 1 {
		t.Errorf("server saw %d attempts, want 1", got)
	}
	if len(rec.delays) != 1 {
		t.Errorf("slept %v, want exactly one backoff", rec.delays)
	}
}

func TestWaitJobPollsWithGrowingBackoff(t *testing.T) {
	var polls atomic.Int32
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		st := api.JobStatus{ID: "j1", Kind: api.JobKindSweep, State: api.JobStateRunning,
			Progress: api.JobProgress{Total: 10, Completed: int(polls.Load())}}
		if polls.Add(1) >= 5 {
			st.State = api.JobStateDone
			st.Progress.Completed = 10
		}
		writeTestJSON(t, w, st)
	}))
	defer srv.Close()
	rec := &recordSleeper{}
	c := New(srv.URL)
	c.sleep = rec.sleep
	var observed []string
	final, err := c.WaitJob(context.Background(), "j1", func(st api.JobStatus) {
		observed = append(observed, st.State)
	})
	if err != nil {
		t.Fatal(err)
	}
	if final.State != api.JobStateDone {
		t.Fatalf("final state %s", final.State)
	}
	if len(observed) != 5 || observed[0] != api.JobStateRunning || observed[4] != api.JobStateDone {
		t.Errorf("observed states %v", observed)
	}
	// Four sleeps between five polls, each 1.5× the last.
	want := []time.Duration{
		DefaultPollInterval,
		DefaultPollInterval * 3 / 2,
		DefaultPollInterval * 3 / 2 * 3 / 2,
		DefaultPollInterval * 3 / 2 * 3 / 2 * 3 / 2,
	}
	if len(rec.delays) != len(want) {
		t.Fatalf("slept %v, want %v", rec.delays, want)
	}
	for i, d := range want {
		if rec.delays[i] != d {
			t.Errorf("poll delay %d = %v, want %v", i, rec.delays[i], d)
		}
	}
}

func TestWaitJobHonoursContextDuringPollSleep(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		writeTestJSON(t, w, api.JobStatus{ID: "j1", State: api.JobStateRunning})
	}))
	defer srv.Close()
	ctx, cancel := context.WithCancel(context.Background())
	rec := &recordSleeper{cancel: cancel}
	c := New(srv.URL)
	c.sleep = rec.sleep
	if _, err := c.WaitJob(ctx, "j1", nil); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestRunJobSurfacesFailedJobError(t *testing.T) {
	mux := http.NewServeMux()
	mux.HandleFunc("POST "+api.PathJobs, func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusAccepted)
		writeTestJSON(t, w, api.JobStatus{ID: "j1", Kind: api.JobKindSimulate, State: api.JobStateQueued})
	})
	mux.HandleFunc("GET "+api.PathJobs+"/{id}", func(w http.ResponseWriter, r *http.Request) {
		writeTestJSON(t, w, api.JobStatus{ID: "j1", Kind: api.JobKindSimulate, State: api.JobStateFailed,
			Error: &api.Error{Code: api.CodeUnstableSystem, Message: "unstable"}})
	})
	srv := httptest.NewServer(mux)
	defer srv.Close()
	c := New(srv.URL)
	c.sleep = (&recordSleeper{}).sleep
	var observed []string
	_, err := c.RunJob(context.Background(), api.NewSimulateJob(api.SimulateRequest{System: api.System{Servers: 1, Lambda: 1}}),
		func(js api.JobStatus) { observed = append(observed, js.State) })
	var ae *api.Error
	if !errors.As(err, &ae) || ae.Code != api.CodeUnstableSystem {
		t.Fatalf("RunJob error %v does not unwrap to the job's recorded failure", err)
	}
	// fn observed the submission status first, then the terminal poll.
	if len(observed) != 2 || observed[0] != api.JobStateQueued || observed[1] != api.JobStateFailed {
		t.Errorf("observed states %v", observed)
	}
}

// TestSubmitJobRetriesOnHintedQueueFull pins the fixed backpressure loop
// at the SDK layer on the exact path the bug stranded: a job submission
// shed with queue_full plus the server's Retry-After hint is resubmitted
// after exactly the hinted delay, and the caller receives the accepted
// job — never the intermediate 429.
func TestSubmitJobRetriesOnHintedQueueFull(t *testing.T) {
	var hits atomic.Int32
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if hits.Add(1) == 1 {
			w.Header().Set("Retry-After", "4")
			w.Header().Set("Content-Type", api.ContentTypeJSON)
			w.WriteHeader(http.StatusTooManyRequests)
			writeTestJSON(t, w, api.ErrorEnvelope{Error: api.QueueFull(8)})
			return
		}
		w.Header().Set("Content-Type", api.ContentTypeJSON)
		w.WriteHeader(http.StatusAccepted)
		writeTestJSON(t, w, api.JobStatus{ID: "j1", State: api.JobStateQueued})
	}))
	defer srv.Close()
	rec := &recordSleeper{}
	c := New(srv.URL)
	c.sleep = rec.sleep
	st, err := c.SubmitJob(context.Background(), api.NewSweepJob(api.SweepRequest{
		System: api.System{Servers: 4},
		Param:  api.ParamLambda,
		Values: []float64{1},
	}))
	if err != nil {
		t.Fatal(err)
	}
	if st.ID != "j1" || st.State != api.JobStateQueued {
		t.Errorf("accepted job %+v", st)
	}
	if got := hits.Load(); got != 2 {
		t.Errorf("server saw %d attempts, want 2 (one shed, one accepted)", got)
	}
	if len(rec.delays) != 1 || rec.delays[0] != 4*time.Second {
		t.Errorf("slept %v, want exactly the server's [4s] hint", rec.delays)
	}
}

func writeTestJSON(t *testing.T, w http.ResponseWriter, v any) {
	t.Helper()
	w.Header().Set("Content-Type", api.ContentTypeJSON)
	if err := json.NewEncoder(w).Encode(v); err != nil {
		t.Errorf("encode: %v", err)
	}
}
