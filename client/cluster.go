package client

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"time"

	"repro/api"
	"repro/internal/cluster/ring"
	"repro/internal/watchdog"
)

// DefaultAttemptTimeout bounds one node attempt of a Cluster failover
// walk (and the tolerated silence between streamed sweep points): a
// wedged node — accepting connections, never answering — fails over to
// the key's next-ranked node instead of hanging the call. It matches
// the server tier's own per-request tolerance (mus-serve's WriteTimeout
// and the router's forward timeout), so no request a lone node would
// have served is abandoned early.
const DefaultAttemptTimeout = 5 * time.Minute

// Cluster is the multi-endpoint SDK for a sharded mus-serve cluster: it
// computes each request's fingerprint client-side and sends it straight
// to the ring owner, so the hot path skips the server-side forwarding
// hop entirely. The ring is the same rendezvous hash the servers run —
// both sides agree on every owner as long as NewCluster is given the
// same identities the servers hash (bare URLs in the common case) — and
// when they ever disagree, the contacted node simply forwards: client
// sharding is an optimisation, never a correctness requirement.
//
// An unreachable or draining owner fails over to the key's next-ranked
// node, exactly as the servers do. A Cluster is safe for concurrent use.
type Cluster struct {
	ring    *ring.Ring
	clients map[string]*Client
}

// NewCluster builds a sharded client over the given node endpoints. Each
// endpoint doubles as that node's ring identity, so pass the same URLs
// the servers were given in -peers (use "id=url" -peers entries only if
// you also shard by those IDs yourself). Options apply to every
// per-node client; same-node retries default to zero — the failover walk
// is the retry layer, and a dead or draining node should cost one
// attempt, not a backoff cycle — but an explicit WithRetries wins.
func NewCluster(endpoints []string, opts ...Option) (*Cluster, error) {
	opts = append([]Option{WithRetries(0)}, opts...)
	clients := make(map[string]*Client, len(endpoints))
	ids := make([]string, 0, len(endpoints))
	for _, ep := range endpoints {
		id := strings.TrimRight(strings.TrimSpace(ep), "/")
		if id == "" {
			continue
		}
		if _, dup := clients[id]; dup {
			continue
		}
		clients[id] = New(id, opts...)
		ids = append(ids, id)
	}
	if len(ids) == 0 {
		return nil, errors.New("client: NewCluster needs at least one endpoint")
	}
	return &Cluster{ring: ring.New(ids), clients: clients}, nil
}

// Endpoints returns the member endpoints in ring order.
func (c *Cluster) Endpoints() []string { return c.ring.IDs() }

// Node returns the single-node client for one endpoint (as returned by
// Endpoints), or nil for an unknown one — the escape hatch for per-node
// introspection like Stats and Health.
func (c *Cluster) Node(endpoint string) *Client { return c.clients[endpoint] }

// fingerprintOf computes the wire system's canonical fingerprint for
// ring placement. A system that does not convert routes by its zero key
// instead — the server will reject it with a proper 400 wherever it
// lands, so nothing is lost by routing it arbitrarily (but
// deterministically).
func fingerprintOf(sys api.System) string {
	coreSys, err := sys.ToSystem()
	if err != nil {
		return ""
	}
	return coreSys.Fingerprint()
}

// errFinal wraps an error that must end the failover walk even though it
// looks node-level — a stream that died after emitting points cannot be
// replayed elsewhere without duplicating them.
type errFinal struct{ err error }

func (e errFinal) Error() string { return e.err.Error() }
func (e errFinal) Unwrap() error { return e.err }

// walk tries fn against each of the key's ranked nodes until one answers
// (with a result or an authoritative error), failing over on node-level
// failures. The last node's failure is returned when all are down.
func (c *Cluster) walk(ctx context.Context, key string, fn func(*Client) error) error {
	var lastErr error
	for _, id := range c.ring.Rank(key) {
		err := fn(c.clients[id])
		var fe errFinal
		if errors.As(err, &fe) {
			return fe.err
		}
		if !api.NodeFailure(err) {
			return err
		}
		lastErr = err
		if ctx.Err() != nil {
			return err
		}
	}
	return fmt.Errorf("client: all %d cluster nodes failed: %w", c.ring.Len(), lastErr)
}

// Solve evaluates one configuration on its owner node (POST /v1/solve on
// the node the servers would forward to anyway), failing over down the
// key's rank when the owner is unreachable or hangs past
// DefaultAttemptTimeout.
func (c *Cluster) Solve(ctx context.Context, req api.SolveRequest) (*api.SolveResponse, error) {
	var resp *api.SolveResponse
	err := c.walk(ctx, fingerprintOf(req.System), func(cl *Client) error {
		actx, cancel := context.WithTimeout(ctx, DefaultAttemptTimeout)
		defer cancel()
		var err error
		resp, err = cl.Solve(actx, req)
		return err
	})
	return resp, err
}

// Simulate runs one replicated simulation on its owner node
// (POST /v1/simulate), failing over like Solve.
func (c *Cluster) Simulate(ctx context.Context, req api.SimulateRequest) (*api.SimulateResponse, error) {
	var resp *api.SimulateResponse
	err := c.walk(ctx, fingerprintOf(req.System), func(cl *Client) error {
		actx, cancel := context.WithTimeout(ctx, DefaultAttemptTimeout)
		defer cancel()
		var err error
		resp, err = cl.Simulate(actx, req)
		return err
	})
	return resp, err
}

// sweepKey picks the coordinator key for a sweep: the fingerprint of the
// first grid point, so repeated identical sweeps reuse one coordinator
// (whose scatter bookkeeping is then warm) while distinct sweeps spread
// across the membership. Only that one point is expanded — fingerprinting
// must stay O(1) however long the grid is.
func sweepKey(req api.SweepRequest) string {
	probe := req
	if len(probe.Values) > 1 {
		probe.Values = probe.Values[:1]
	}
	systems, err := probe.Systems()
	if err != nil || len(systems) == 0 {
		return ""
	}
	return systems[0].Fingerprint()
}

// Sweep evaluates a parameter grid (POST /v1/sweep) through one
// coordinator node, which scatters the points across the cluster by
// ownership and gathers them back in grid order. Coordinator choice
// fails over when the preferred node is down or hangs past
// DefaultAttemptTimeout.
func (c *Cluster) Sweep(ctx context.Context, req api.SweepRequest) (*api.SweepResponse, error) {
	var resp *api.SweepResponse
	err := c.walk(ctx, sweepKey(req), func(cl *Client) error {
		actx, cancel := context.WithTimeout(ctx, DefaultAttemptTimeout)
		defer cancel()
		var err error
		resp, err = cl.Sweep(actx, req)
		return err
	})
	return resp, err
}

// SweepStream evaluates a parameter grid as an NDJSON stream through one
// coordinator node (see Client.SweepStream for the callback contract;
// an error returned by fn still aborts the stream and comes back
// verbatim). Coordinator failover applies only while nothing has been
// emitted yet: once fn has observed points, a mid-stream failure
// surfaces as an error instead of replaying the stream from another
// node with duplicates.
func (c *Cluster) SweepStream(ctx context.Context, req api.SweepRequest, fn func(api.SweepPoint) error) error {
	emitted := false
	var cbErr error
	return c.walk(ctx, sweepKey(req), func(cl *Client) error {
		cbErr = nil
		// The idle watchdog bounds the silence between points at
		// DefaultAttemptTimeout: a coordinator that accepts the stream and
		// then stalls (partition, wedge) is abandoned — failing over if
		// nothing was emitted yet, surfacing a mid-flight error otherwise —
		// while an arbitrarily long healthy stream ticks the timer per
		// point and runs forever.
		sctx, tick, stopWatchdog := watchdog.New(ctx, DefaultAttemptTimeout)
		err := cl.SweepStream(sctx, req, func(pt api.SweepPoint) error {
			tick()
			emitted = true
			if e := fn(pt); e != nil {
				cbErr = e
				return e
			}
			return nil
		})
		stopWatchdog()
		if err != nil {
			if cbErr != nil {
				// The caller aborted the stream; its own error travels back
				// verbatim and must not read as (or trigger) a node failover.
				return errFinal{cbErr}
			}
			if emitted && api.NodeFailure(err) {
				return errFinal{fmt.Errorf("client: sweep stream died mid-flight (no duplicate-free failover): %w", err)}
			}
		}
		return err
	})
}

// ClusterStats fetches every node's /v1/cluster view concurrently,
// keyed by endpoint — one slow or dead node delays nothing but its own
// entry. Unreachable nodes are reported in the joined error while the
// reachable majority's snapshots are still returned.
func (c *Cluster) ClusterStats(ctx context.Context) (map[string]*api.ClusterResponse, error) {
	var (
		mu   sync.Mutex
		wg   sync.WaitGroup
		out  = make(map[string]*api.ClusterResponse, len(c.clients))
		errs []error
	)
	for id, cl := range c.clients {
		wg.Add(1)
		go func(id string, cl *Client) {
			defer wg.Done()
			st, err := cl.Cluster(ctx)
			mu.Lock()
			defer mu.Unlock()
			if err != nil {
				errs = append(errs, fmt.Errorf("%s: %w", id, err))
				return
			}
			out[id] = st
		}(id, cl)
	}
	wg.Wait()
	return out, errors.Join(errs...)
}

// Cluster fetches one node's cluster view (GET /v1/cluster) — per-node
// health as that node sees it, ownership counts and routing counters.
func (c *Client) Cluster(ctx context.Context) (*api.ClusterResponse, error) {
	var resp api.ClusterResponse
	if err := c.call(ctx, http.MethodGet, api.PathCluster, nil, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}
