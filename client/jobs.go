package client

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"time"

	"repro/api"
)

// Job-polling defaults used by WaitJob; see WaitJob for the schedule.
const (
	// DefaultPollInterval is the first WaitJob poll delay.
	DefaultPollInterval = 100 * time.Millisecond
	// MaxPollInterval caps the growing WaitJob poll delay.
	MaxPollInterval = 2 * time.Second
)

// SubmitJob submits an asynchronous job (POST /v1/jobs) and returns its
// queued status. A full scheduler queue surfaces as an *api.Error with
// code api.CodeQueueFull — back off and resubmit.
func (c *Client) SubmitJob(ctx context.Context, req api.JobRequest) (*api.JobStatus, error) {
	var resp api.JobStatus
	if err := c.call(ctx, http.MethodPost, api.PathJobs, req, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// JobStatus polls one job (GET /v1/jobs/{id}).
func (c *Client) JobStatus(ctx context.Context, id string) (*api.JobStatus, error) {
	var resp api.JobStatus
	if err := c.call(ctx, http.MethodGet, api.JobPath(id), nil, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// JobResult fetches the outcome of a done job (GET /v1/jobs/{id}/result).
// A job that is not terminal yet surfaces as code api.CodeNotReady; a
// failed job surfaces its recorded evaluation error; a canceled one
// api.CodeCanceled.
func (c *Client) JobResult(ctx context.Context, id string) (*api.JobResult, error) {
	var resp api.JobResult
	if err := c.call(ctx, http.MethodGet, api.JobResultPath(id), nil, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// CancelJob cancels one job (DELETE /v1/jobs/{id}) and returns its
// status. Cancelation is idempotent and asynchronous for running jobs:
// the returned state may still be "running" until the engine releases the
// job's in-flight evaluations; WaitJob observes the terminal "canceled".
func (c *Client) CancelJob(ctx context.Context, id string) (*api.JobStatus, error) {
	var resp api.JobStatus
	if err := c.call(ctx, http.MethodDelete, api.JobPath(id), nil, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// ListJobs fetches the status of every job the daemon retains, newest
// first (GET /v1/jobs) — after a node restart this includes the history
// replayed from its write-ahead log.
func (c *Client) ListJobs(ctx context.Context) (*api.JobListResponse, error) {
	var resp api.JobListResponse
	if err := c.call(ctx, http.MethodGet, api.PathJobs, nil, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// WaitJob polls one job until it reaches a terminal state and returns the
// final status. Poll delays back off from DefaultPollInterval, growing
// 1.5× per poll up to MaxPollInterval; ctx bounds the whole wait. When fn
// is non-nil it is invoked with every observed status — progress
// reporting for CLIs — including the terminal one.
//
// A poll that fails with a node failure (a transport error while the node
// restarts, or a node_unavailable rejection while it drains) does not
// abort the wait: durable jobs survive the restart and resume, so WaitJob
// keeps polling on the same schedule until ctx expires. Structured
// failures about the job itself (not_found after TTL expiry, say) still
// return immediately.
func (c *Client) WaitJob(ctx context.Context, id string, fn func(api.JobStatus)) (*api.JobStatus, error) {
	delay := DefaultPollInterval
	for {
		st, err := c.JobStatus(ctx, id)
		switch {
		case err == nil:
			if fn != nil {
				fn(*st)
			}
			if st.Terminal() {
				return st, nil
			}
		case ctx.Err() != nil:
			return nil, fmt.Errorf("client: waiting for job %s: %w", id, ctx.Err())
		case !api.NodeFailure(err):
			return nil, err
		}
		if err := c.sleep(ctx, delay); err != nil {
			return nil, fmt.Errorf("client: waiting for job %s: %w", id, err)
		}
		if delay = delay * 3 / 2; delay > MaxPollInterval {
			delay = MaxPollInterval
		}
	}
}

// RunJob drives one job through its whole lifecycle: submit, wait for a
// terminal state (polling with WaitJob's backoff), fetch the result. fn,
// when non-nil, observes every status — the submission's and each
// poll's. A job that ends failed or canceled is an error: the failed
// job's recorded *api.Error is reachable through errors.As.
func (c *Client) RunJob(ctx context.Context, req api.JobRequest, fn func(api.JobStatus)) (*api.JobResult, error) {
	st, err := c.SubmitJob(ctx, req)
	if err != nil {
		return nil, err
	}
	if fn != nil {
		fn(*st)
	}
	final, err := c.WaitJob(ctx, st.ID, fn)
	if err != nil {
		return nil, err
	}
	if final.State != api.JobStateDone {
		if final.Error != nil {
			return nil, fmt.Errorf("client: job %s ended %s: %w", final.ID, final.State, final.Error)
		}
		return nil, fmt.Errorf("client: job %s ended %s", final.ID, final.State)
	}
	return c.JobResult(ctx, final.ID)
}

// JobSweepPartial fetches the sweep points a job has solved so far
// (GET /v1/jobs/{id}/result with Accept: application/x-ndjson): fn is
// invoked per available point, in grid order, and the job's state at
// snapshot time (the X-Job-State response header) is returned — "running"
// distinguishes a mid-run snapshot from a complete "done" one. Unlike
// SweepStream, a short stream is not truncation: it is the partial
// result the endpoint exists to serve.
func (c *Client) JobSweepPartial(ctx context.Context, id string, fn func(api.SweepPoint) error) (state string, err error) {
	path := api.JobResultPath(id)
	resp, err := c.send(ctx, http.MethodGet, path, nil, api.ContentTypeNDJSON)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return "", c.errorFrom(resp, path)
	}
	state = resp.Header.Get(api.HeaderJobState)
	if _, err := decodeSweepPoints(resp.Body, fn); err != nil {
		var cb errCallback
		if errors.As(err, &cb) {
			return state, cb.err // the caller's own error, verbatim
		}
		return state, fmt.Errorf("client: GET %s: %w", path, err)
	}
	return state, nil
}
