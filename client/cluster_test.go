package client

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"

	"repro/api"
	"repro/internal/cluster/ring"
)

// fakeNode is one fake cluster endpoint recording which requests hit it.
type fakeNode struct {
	ts        *httptest.Server
	solveHits atomic.Int64
	sweepHits atomic.Int64
}

func newFakeNode(t *testing.T) *fakeNode {
	t.Helper()
	n := &fakeNode{}
	mux := http.NewServeMux()
	mux.HandleFunc("POST "+api.PathSolve, func(w http.ResponseWriter, r *http.Request) {
		n.solveHits.Add(1)
		json.NewEncoder(w).Encode(api.SolveResponse{Fingerprint: "fp", Stable: true}) //nolint:errcheck
	})
	mux.HandleFunc("POST "+api.PathSweep, func(w http.ResponseWriter, r *http.Request) {
		n.sweepHits.Add(1)
		var req api.SweepRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		w.Header().Set("Content-Type", api.ContentTypeNDJSON)
		enc := json.NewEncoder(w)
		for i, v := range req.Values {
			perf := api.Performance{MeanJobs: v}
			enc.Encode(api.SweepPoint{Index: i, Value: v, Perf: &perf}) //nolint:errcheck
		}
	})
	mux.HandleFunc("GET "+api.PathCluster, func(w http.ResponseWriter, r *http.Request) {
		json.NewEncoder(w).Encode(api.ClusterResponse{Enabled: true, Self: n.ts.URL}) //nolint:errcheck
	})
	n.ts = httptest.NewServer(mux)
	t.Cleanup(n.ts.Close)
	return n
}

func TestNewClusterValidation(t *testing.T) {
	if _, err := NewCluster(nil); err == nil {
		t.Error("empty endpoint list accepted")
	}
	if _, err := NewCluster([]string{"", "  "}); err == nil {
		t.Error("blank endpoints accepted")
	}
	c, err := NewCluster([]string{"http://a:1/", "http://a:1", "http://b:2"})
	if err != nil {
		t.Fatal(err)
	}
	if got := c.Endpoints(); len(got) != 2 {
		t.Errorf("Endpoints() = %v, want the two distinct normalized URLs", got)
	}
	if c.Node("http://a:1") == nil || c.Node("http://nope") != nil {
		t.Error("Node() accessor broken")
	}
}

// TestClusterSolveRoutesToRingOwner: the SDK must send each request to
// exactly the node the server-side ring would pick — that agreement is
// the whole point of client-side sharding.
func TestClusterSolveRoutesToRingOwner(t *testing.T) {
	a, b := newFakeNode(t), newFakeNode(t)
	urls := []string{a.ts.URL, b.ts.URL}
	c, err := NewCluster(urls)
	if err != nil {
		t.Fatal(err)
	}
	req := api.SolveRequest{System: api.System{Servers: 7, Lambda: 2}}
	if _, err := c.Solve(context.Background(), req); err != nil {
		t.Fatal(err)
	}
	owner := ring.New(urls).Owner(fingerprintOf(req.System))
	wantA, wantB := int64(0), int64(0)
	if owner == a.ts.URL {
		wantA = 1
	} else {
		wantB = 1
	}
	if a.solveHits.Load() != wantA || b.solveHits.Load() != wantB {
		t.Errorf("owner %q; hits a=%d b=%d", owner, a.solveHits.Load(), b.solveHits.Load())
	}
}

// TestClusterSolveFailsOverWhenOwnerDown: with the owner unreachable the
// request lands on the next-ranked node instead of failing.
func TestClusterSolveFailsOverWhenOwnerDown(t *testing.T) {
	a, b := newFakeNode(t), newFakeNode(t)
	urls := []string{a.ts.URL, b.ts.URL}
	c, err := NewCluster(urls, WithRetries(0))
	if err != nil {
		t.Fatal(err)
	}
	req := api.SolveRequest{System: api.System{Servers: 9, Lambda: 3}}
	owner := ring.New(urls).Owner(fingerprintOf(req.System))
	victim, survivor := a, b
	if owner == b.ts.URL {
		victim, survivor = b, a
	}
	victim.ts.Close()
	if _, err := c.Solve(context.Background(), req); err != nil {
		t.Fatalf("failover solve: %v", err)
	}
	if survivor.solveHits.Load() != 1 {
		t.Errorf("survivor saw %d solves, want 1", survivor.solveHits.Load())
	}
}

// TestClusterSolveAllNodesDown: every node down surfaces one error
// naming the cluster, wrapping the last node failure.
func TestClusterSolveAllNodesDown(t *testing.T) {
	a, b := newFakeNode(t), newFakeNode(t)
	c, err := NewCluster([]string{a.ts.URL, b.ts.URL}, WithRetries(0))
	if err != nil {
		t.Fatal(err)
	}
	a.ts.Close()
	b.ts.Close()
	_, err = c.Solve(context.Background(), api.SolveRequest{System: api.System{Servers: 1, Lambda: 0.1}})
	if err == nil || !strings.Contains(err.Error(), "all 2 cluster nodes failed") {
		t.Fatalf("err = %v", err)
	}
}

// TestClusterSweepStreamNoDuplicateFailover: a stream that dies after
// emitting points must error out rather than replay from another node —
// the caller would otherwise see duplicates.
func TestClusterSweepStreamNoDuplicateFailover(t *testing.T) {
	var otherHits atomic.Int64
	flaky := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		// Two NDJSON lines of a three-point sweep, then the connection dies:
		// the client sees truncation mid-stream.
		w.Header().Set("Content-Type", api.ContentTypeNDJSON)
		fmt.Fprintln(w, `{"index":0,"value":1,"perf":{"mean_jobs":1}}`)
		fmt.Fprintln(w, `{"index":1,"value":2,"perf":{"mean_jobs":2}}`)
	}))
	t.Cleanup(flaky.Close)
	other := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		otherHits.Add(1)
		http.Error(w, "should never be asked", http.StatusTeapot)
	}))
	t.Cleanup(other.Close)
	// Pick a grid whose ring coordinator is the flaky node (the ring is a
	// pure function of URL and fingerprint, so a few candidate grids are
	// guaranteed to find one).
	urls := []string{flaky.URL, other.URL}
	var req api.SweepRequest
	for v := 1.0; ; v++ {
		req = api.SweepRequest{System: api.System{Servers: 4}, Param: api.ParamLambda, Values: []float64{v, v + 0.1, v + 0.2}}
		if ring.New(urls).Owner(sweepKey(req)) == flaky.URL {
			break
		}
		if v > 1000 {
			t.Fatal("no grid coordinated by the flaky node in 1000 tries")
		}
	}
	c, err := NewCluster(urls, WithRetries(0))
	if err != nil {
		t.Fatal(err)
	}
	var got []api.SweepPoint
	err = c.SweepStream(context.Background(), req, func(pt api.SweepPoint) error {
		got = append(got, pt)
		return nil
	})
	if err == nil || !strings.Contains(err.Error(), "died mid-flight") {
		t.Fatalf("err = %v, want the mid-flight guard", err)
	}
	if len(got) != 2 {
		t.Fatalf("callback saw %d points, want the 2 delivered before the death", len(got))
	}
	if otherHits.Load() != 0 {
		t.Fatalf("stream was replayed on another node (%d hits) — duplicate emissions", otherHits.Load())
	}
}

// TestClusterSweepStreamCallbackAbortVerbatim: an error returned by the
// caller's own callback comes back verbatim (== comparable), is not
// dressed up as a node death, and triggers no failover to another node.
func TestClusterSweepStreamCallbackAbortVerbatim(t *testing.T) {
	var hits [2]atomic.Int64
	mk := func(i int) *httptest.Server {
		return httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			hits[i].Add(1)
			w.Header().Set("Content-Type", api.ContentTypeNDJSON)
			fmt.Fprintln(w, `{"index":0,"value":1,"perf":{"mean_jobs":1}}`)
			fmt.Fprintln(w, `{"index":1,"value":2,"perf":{"mean_jobs":2}}`)
			fmt.Fprintln(w, `{"index":2,"value":3,"perf":{"mean_jobs":3}}`)
		}))
	}
	a, b := mk(0), mk(1)
	t.Cleanup(a.Close)
	t.Cleanup(b.Close)
	c, err := NewCluster([]string{a.URL, b.URL})
	if err != nil {
		t.Fatal(err)
	}
	sentinel := errors.New("stop right there")
	req := api.SweepRequest{System: api.System{Servers: 4}, Param: api.ParamLambda, Values: []float64{1, 2, 3}}
	got := c.SweepStream(context.Background(), req, func(pt api.SweepPoint) error {
		if pt.Index == 1 {
			return sentinel
		}
		return nil
	})
	if got != sentinel {
		t.Fatalf("callback abort came back as %v, want the sentinel verbatim", got)
	}
	if hits[0].Load()+hits[1].Load() != 1 {
		t.Fatalf("abort caused a retry on another node (hits %d+%d)", hits[0].Load(), hits[1].Load())
	}
}

// TestClusterStatsCollectsAllNodes: ClusterStats returns every reachable
// node's snapshot and reports the unreachable ones in the joined error.
func TestClusterStatsCollectsAllNodes(t *testing.T) {
	a, b := newFakeNode(t), newFakeNode(t)
	c, err := NewCluster([]string{a.ts.URL, b.ts.URL}, WithRetries(0))
	if err != nil {
		t.Fatal(err)
	}
	all, err := c.ClusterStats(context.Background())
	if err != nil || len(all) != 2 {
		t.Fatalf("stats: %v, %d nodes", err, len(all))
	}
	b.ts.Close()
	partial, err := c.ClusterStats(context.Background())
	if err == nil || len(partial) != 1 {
		t.Fatalf("partial stats: err=%v, %d nodes (want 1 + error)", err, len(partial))
	}
	var ae *api.Error
	_ = errors.As(err, &ae) // joined transport errors need not be typed; presence is enough
}
