package client

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"

	"repro/api"
)

func TestListJobs(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet || r.URL.Path != api.PathJobs {
			t.Errorf("unexpected request %s %s", r.Method, r.URL.Path)
		}
		w.Header().Set("Content-Type", api.ContentTypeJSON)
		json.NewEncoder(w).Encode(api.JobListResponse{Jobs: []api.JobStatus{ //nolint:errcheck
			{ID: "j2", Kind: api.JobKindSweep, State: api.JobStateRunning, Node: "node-b"},
			{ID: "j1", Kind: api.JobKindSimulate, State: api.JobStateDone, Detail: api.DetailNodeRestarting},
		}})
	}))
	defer srv.Close()
	c := New(srv.URL)
	list, err := c.ListJobs(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(list.Jobs) != 2 || list.Jobs[0].ID != "j2" || list.Jobs[0].Node != "node-b" {
		t.Fatalf("list %+v", list)
	}
	if list.Jobs[1].Detail != api.DetailNodeRestarting {
		t.Fatalf("detail lost on the wire: %+v", list.Jobs[1])
	}
}

// TestWaitJobRidesOutNodeRestart pins WaitJob's durability contract: polls
// that fail with node failures — a drain rejection, then a dropped
// connection while the process restarts — keep the wait alive on the same
// backoff schedule, and the job's terminal status is still delivered.
func TestWaitJobRidesOutNodeRestart(t *testing.T) {
	var polls atomic.Int32
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch polls.Add(1) {
		case 1: // draining for shutdown
			w.Header().Set("Retry-After", "1")
			w.Header().Set("Content-Type", api.ContentTypeJSON)
			w.WriteHeader(http.StatusServiceUnavailable)
			json.NewEncoder(w).Encode(api.ErrorEnvelope{Error: api.NodeUnavailable("draining")}) //nolint:errcheck
		case 2: // process gone: kill the connection without a response
			hj, ok := w.(http.Hijacker)
			if !ok {
				t.Fatal("recorder cannot hijack")
			}
			conn, _, err := hj.Hijack()
			if err != nil {
				t.Fatalf("hijack: %v", err)
			}
			conn.Close()
		case 3: // back up, job recovered from the WAL and running again
			w.Header().Set("Content-Type", api.ContentTypeJSON)
			json.NewEncoder(w).Encode(api.JobStatus{ //nolint:errcheck
				ID: "j1", Kind: api.JobKindSweep, State: api.JobStateRunning, Detail: api.DetailNodeRestarting,
			})
		default:
			w.Header().Set("Content-Type", api.ContentTypeJSON)
			json.NewEncoder(w).Encode(api.JobStatus{ID: "j1", Kind: api.JobKindSweep, State: api.JobStateDone}) //nolint:errcheck
		}
	}))
	defer srv.Close()
	rec := &recordSleeper{}
	// No client-level retries — WaitJob itself must ride the failures out —
	// and no keep-alives, so the dropped connection is a plain transport
	// error instead of triggering net/http's reused-connection GET retry.
	c := New(srv.URL, WithRetries(0),
		WithHTTPClient(&http.Client{Transport: &http.Transport{DisableKeepAlives: true}}))
	c.sleep = rec.sleep
	var seen []string
	final, err := c.WaitJob(context.Background(), "j1", func(st api.JobStatus) {
		seen = append(seen, st.State)
	})
	if err != nil {
		t.Fatal(err)
	}
	if final.State != api.JobStateDone {
		t.Fatalf("final %+v", final)
	}
	// fn observed only real statuses — the two failed polls never surfaced.
	if len(seen) != 2 || seen[0] != api.JobStateRunning || seen[1] != api.JobStateDone {
		t.Fatalf("observed states %v", seen)
	}
	if got := polls.Load(); got != 4 {
		t.Fatalf("server saw %d polls, want 4", got)
	}
	// One backoff sleep per non-terminal poll, failed or not.
	if len(rec.delays) != 3 {
		t.Fatalf("slept %v, want 3 delays", rec.delays)
	}
}

// TestWaitJobStillFailsFastOnJobErrors: only node failures are ridden out
// — a structured answer about the job itself (expired, never existed)
// aborts the wait immediately.
func TestWaitJobStillFailsFastOnJobErrors(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", api.ContentTypeJSON)
		w.WriteHeader(http.StatusNotFound)
		json.NewEncoder(w).Encode(api.ErrorEnvelope{Error: api.JobNotFound("j9")}) //nolint:errcheck
	}))
	defer srv.Close()
	rec := &recordSleeper{}
	c := New(srv.URL, WithRetries(0))
	c.sleep = rec.sleep
	_, err := c.WaitJob(context.Background(), "j9", nil)
	var ae *api.Error
	if !errors.As(err, &ae) || ae.Code != api.CodeNotFound {
		t.Fatalf("WaitJob on unknown job: %v", err)
	}
	if len(rec.delays) != 0 {
		t.Fatalf("WaitJob slept %v before failing fast", rec.delays)
	}
}
